package hub

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// Handler returns the hub's HTTP API:
//
//	GET  /api/status              hub summary
//	GET  /api/devices             device states and liveness
//	GET  /api/routines            all routine results
//	GET  /api/routines/{id}       one routine result
//	POST /api/routines            submit a routine (Fig 10-style JSON spec)
//	GET  /api/bank                stored routine names
//	POST /api/bank                store a routine definition
//	POST /api/bank/{name}/trigger dispatch a stored routine
//	GET  /api/events              recent controller events
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Status())
	})
	mux.HandleFunc("GET /api/devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Devices())
	})
	mux.HandleFunc("GET /api/routines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, resultsJSON(h.Results()))
	})
	mux.HandleFunc("GET /api/routines/{id}", h.handleGetRoutine)
	mux.HandleFunc("POST /api/routines", h.handleSubmit)
	mux.HandleFunc("GET /api/bank", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.StoredRoutines())
	})
	mux.HandleFunc("POST /api/bank", h.handleStore)
	mux.HandleFunc("POST /api/bank/{name}/trigger", h.handleTrigger)
	mux.HandleFunc("POST /api/bank/{name}/schedule", h.handleSchedule)
	mux.HandleFunc("GET /api/triggers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Triggers())
	})
	mux.HandleFunc("DELETE /api/triggers/{handle}", h.handleCancelTrigger)
	mux.HandleFunc("GET /api/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eventsJSON(h.Events()))
	})
	return mux
}

// handleSchedule creates an automation trigger for a stored routine. The
// delay (one-shot) or interval (recurring) is given as a Go duration string
// in the `after` or `every` query parameter.
func (h *Hub) handleSchedule(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		handle TriggerHandle
		err    error
	)
	switch {
	case r.URL.Query().Get("every") != "":
		var interval time.Duration
		interval, err = time.ParseDuration(r.URL.Query().Get("every"))
		if err == nil {
			handle, err = h.ScheduleEvery(name, interval)
		}
	case r.URL.Query().Get("after") != "":
		var delay time.Duration
		delay, err = time.ParseDuration(r.URL.Query().Get("after"))
		if err == nil {
			handle, err = h.ScheduleAfter(name, delay)
		}
	default:
		err = fmt.Errorf("either ?after=<duration> or ?every=<duration> is required")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"handle": handle})
}

func (h *Hub) handleCancelTrigger(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("handle"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trigger handle: %w", err))
		return
	}
	h.CancelTrigger(TriggerHandle(id))
	writeJSON(w, http.StatusOK, map[string]string{"cancelled": r.PathValue("handle")})
}

func (h *Hub) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	id, err := h.SubmitSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

func (h *Hub) handleGetRoutine(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad routine id: %w", err))
		return
	}
	res, ok := h.Result(routine.ID(id))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no routine %d", id))
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

func (h *Hub) handleStore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	def, err := routine.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.StoreRoutine(def); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"stored": def.Name})
}

func (h *Hub) handleTrigger(w http.ResponseWriter, r *http.Request) {
	id, err := h.Trigger(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

// --- JSON views ---------------------------------------------------------------

type resultView struct {
	ID          routine.ID `json:"id"`
	Name        string     `json:"name"`
	Status      string     `json:"status"`
	Submitted   time.Time  `json:"submitted"`
	Started     time.Time  `json:"started,omitempty"`
	Finished    time.Time  `json:"finished,omitempty"`
	LatencyMS   int64      `json:"latency_ms,omitempty"`
	Executed    int        `json:"executed"`
	Skipped     int        `json:"skipped,omitempty"`
	BestEffort  int        `json:"best_effort_failures,omitempty"`
	RolledBack  int        `json:"rolled_back,omitempty"`
	AbortReason string     `json:"abort_reason,omitempty"`
}

func resultJSON(res visibility.Result) resultView {
	v := resultView{
		ID:          res.ID,
		Status:      res.Status.String(),
		Submitted:   res.Submitted,
		Started:     res.Started,
		Finished:    res.Finished,
		Executed:    res.Executed,
		Skipped:     res.Skipped,
		BestEffort:  res.BestEffortFailures,
		RolledBack:  res.RolledBack,
		AbortReason: res.AbortReason,
	}
	if res.Routine != nil {
		v.Name = res.Routine.Name
	}
	if res.Status == visibility.StatusCommitted {
		v.LatencyMS = res.Latency().Milliseconds()
	}
	return v
}

func resultsJSON(results []visibility.Result) []resultView {
	out := make([]resultView, 0, len(results))
	for _, res := range results {
		out = append(out, resultJSON(res))
	}
	return out
}

type eventView struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Routine int64     `json:"routine,omitempty"`
	Device  string    `json:"device,omitempty"`
	State   string    `json:"state,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

func eventsJSON(events []visibility.Event) []eventView {
	out := make([]eventView, 0, len(events))
	for _, e := range events {
		out = append(out, eventView{
			Time:    e.Time,
			Kind:    e.Kind.String(),
			Routine: int64(e.Routine),
			Device:  string(e.Device),
			State:   string(e.State),
			Detail:  e.Detail,
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

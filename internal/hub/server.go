package hub

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"safehome/internal/device"
	"safehome/internal/manager"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// Handler returns the hub's HTTP API:
//
//	GET  /healthz                 process liveness (always 200)
//	GET  /readyz                  readiness: 503 + Retry-After while the
//	                              hub is restarting or quarantined
//	GET  /metrics                 Prometheus text exposition (see
//	                              ARCHITECTURE.md "Observability")
//	GET  /api/status              hub summary
//	GET  /api/devices             device states and liveness
//	GET  /api/routines            all routine results
//	GET  /api/routines/{id}       one routine result
//	POST /api/routines            submit a routine (Fig 10-style JSON spec)
//	GET  /api/bank                stored routine names
//	POST /api/bank                store a routine definition
//	POST /api/bank/{name}/trigger dispatch a stored routine
//	GET  /api/events              recent controller events
//	GET  /api/events?since=N      only events with sequence >= N, plus the
//	                              next cursor — pollers fetch only the tail
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		health := h.Health()
		if h.Serving() {
			writeJSON(w, http.StatusOK, map[string]string{"status": string(health)})
			return
		}
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("hub %s", health))
	})
	mux.Handle("GET /metrics", h.Telemetry().Handler())
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Status())
	})
	mux.HandleFunc("GET /api/devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Devices())
	})
	mux.HandleFunc("GET /api/routines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, resultsJSON(h.Results()))
	})
	mux.HandleFunc("GET /api/routines/{id}", h.handleGetRoutine)
	mux.HandleFunc("POST /api/routines", h.handleSubmit)
	mux.HandleFunc("GET /api/bank", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.StoredRoutines())
	})
	mux.HandleFunc("POST /api/bank", h.handleStore)
	mux.HandleFunc("POST /api/bank/{name}/trigger", h.handleTrigger)
	mux.HandleFunc("POST /api/bank/{name}/schedule", h.handleSchedule)
	mux.HandleFunc("GET /api/triggers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Triggers())
	})
	mux.HandleFunc("DELETE /api/triggers/{handle}", h.handleCancelTrigger)
	mux.HandleFunc("GET /api/events", func(w http.ResponseWriter, r *http.Request) {
		since, ok, err := sinceCursor(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, eventsJSON(h.Events()))
			return
		}
		ev, next := h.EventsSince(since)
		writeJSON(w, http.StatusOK, eventsPage(ev, next))
	})
	return mux
}

// sinceCursor parses the optional ?since= event cursor. An empty or missing
// value reports absent (full fetch) rather than an error, so templated URLs
// with an unset cursor variable behave the same on every events route.
func sinceCursor(r *http.Request) (since uint64, ok bool, err error) {
	q := r.URL.Query().Get("since")
	if q == "" {
		return 0, false, nil
	}
	since, err = strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad since cursor: %w", err)
	}
	return since, true, nil
}

// handleSchedule creates an automation trigger for a stored routine. The
// delay (one-shot) or interval (recurring) is given as a Go duration string
// in the `after` or `every` query parameter.
func (h *Hub) handleSchedule(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		handle TriggerHandle
		err    error
	)
	switch {
	case r.URL.Query().Get("every") != "":
		var interval time.Duration
		interval, err = time.ParseDuration(r.URL.Query().Get("every"))
		if err == nil {
			handle, err = h.ScheduleEvery(name, interval)
		}
	case r.URL.Query().Get("after") != "":
		var delay time.Duration
		delay, err = time.ParseDuration(r.URL.Query().Get("after"))
		if err == nil {
			handle, err = h.ScheduleAfter(name, delay)
		}
	default:
		err = fmt.Errorf("either ?after=<duration> or ?every=<duration> is required")
	}
	if err != nil {
		writeHubError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"handle": handle})
}

func (h *Hub) handleCancelTrigger(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("handle"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trigger handle: %w", err))
		return
	}
	if err := h.CancelTrigger(TriggerHandle(id)); err != nil {
		writeHubError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"cancelled": r.PathValue("handle")})
}

func (h *Hub) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	id, err := h.SubmitSpec(body)
	if err != nil {
		writeHubError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

func (h *Hub) handleGetRoutine(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad routine id: %w", err))
		return
	}
	res, ok := h.Result(routine.ID(id))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no routine %d", id))
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

func (h *Hub) handleStore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	def, err := routine.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.StoreRoutine(def); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"stored": def.Name})
}

func (h *Hub) handleTrigger(w http.ResponseWriter, r *http.Request) {
	id, err := h.Trigger(r.PathValue("name"))
	if err != nil {
		writeHubError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

// writeHubError maps single-home hub errors onto HTTP statuses: a full
// mailbox is 429 Too Many Requests (back off and retry), a closed or
// poisoned-and-restarting hub is 503, anything else keeps the handler's
// fallback status.
func writeHubError(w http.ResponseWriter, fallback int, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrPoisoned):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, fallback, err)
	}
}

// --- multi-tenant API ---------------------------------------------------------

// ManagerHandler returns the multi-tenant HTTP API served when the hub runs
// in manager mode (`safehome-hub -homes N -shards S`). Every home-scoped
// route is dispatched through the manager, which serializes it on the home's
// shard:
//
//	GET  /healthz                         process liveness (always 200)
//	GET  /readyz                          readiness + supervision counters
//	GET  /metrics                         Prometheus text exposition
//	GET  /api/status                      manager summary (shards, totals)
//	GET  /homes                           every home's summary (incl. health)
//	PUT  /homes/{id}?plugs=N              create a home with N plug devices
//	GET  /homes/{id}/status               one home's summary
//	GET  /homes/{id}/devices              ground-truth device states
//	GET  /homes/{id}/routines             the home's routine results
//	POST /homes/{id}/routines             submit a routine (Fig 10-style JSON)
//	GET  /homes/{id}/routines/{rid}       one routine result
//	GET  /homes/{id}/events?since=N       the home's event tail + next cursor
//	                                      (empty unless the manager was built
//	                                      with a per-home event log)
//	POST /homes/{id}/devices/{dev}/fail   inject a fail-stop device failure
//	POST /homes/{id}/devices/{dev}/restore inject the matching restart
//
// defaultPlugs is the fleet size given to homes created without an explicit
// ?plugs= (values < 1 fall back to 5); the hub passes its -plugs flag so
// API-created homes match the startup homes.
func ManagerHandler(m *manager.Manager, defaultPlugs int) http.Handler {
	if defaultPlugs < 1 {
		defaultPlugs = 5
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// The manager serves as long as the process does; per-home readiness
		// (restarting/quarantined homes answer 503 on their scoped routes) is
		// visible in /homes and the supervision counters here.
		st := m.Status()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ok",
			"homes":       st.Homes,
			"poisons":     st.Poisons,
			"restarts":    st.Restarts,
			"quarantined": st.Quarantined,
		})
	})
	mux.Handle("GET /metrics", m.Telemetry().Handler())
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Status())
	})
	mux.HandleFunc("GET /homes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Homes())
	})
	mux.HandleFunc("PUT /homes/{id}", func(w http.ResponseWriter, r *http.Request) {
		plugs := defaultPlugs
		if q := r.URL.Query().Get("plugs"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad plugs count %q", q))
				return
			}
			plugs = n
		}
		id := manager.HomeID(r.PathValue("id"))
		if err := m.AddHome(id, plugDevices(plugs)...); err != nil {
			writeManagerError(w, err)
			return
		}
		st, err := m.HomeStatus(id)
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /homes/{id}/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.HomeStatus(manager.HomeID(r.PathValue("id")))
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /homes/{id}/devices", func(w http.ResponseWriter, r *http.Request) {
		states, err := m.DeviceStates(manager.HomeID(r.PathValue("id")))
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, states)
	})
	mux.HandleFunc("GET /homes/{id}/routines", func(w http.ResponseWriter, r *http.Request) {
		results, err := m.Results(manager.HomeID(r.PathValue("id")))
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resultsJSON(results))
	})
	mux.HandleFunc("POST /homes/{id}/routines", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		rid, err := m.SubmitSpec(manager.HomeID(r.PathValue("id")), body)
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"id": rid})
	})
	mux.HandleFunc("GET /homes/{id}/routines/{rid}", func(w http.ResponseWriter, r *http.Request) {
		rid, err := strconv.ParseInt(r.PathValue("rid"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad routine id: %w", err))
			return
		}
		res, ok, err := m.Result(manager.HomeID(r.PathValue("id")), routine.ID(rid))
		if err != nil {
			writeManagerError(w, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no routine %d", rid))
			return
		}
		writeJSON(w, http.StatusOK, resultJSON(res))
	})
	mux.HandleFunc("GET /homes/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		since, _, err := sinceCursor(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ev, next, err := m.Events(manager.HomeID(r.PathValue("id")), since)
		if err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, eventsPage(ev, next))
	})
	mux.HandleFunc("POST /homes/{id}/devices/{dev}/fail", func(w http.ResponseWriter, r *http.Request) {
		if err := m.FailDevice(manager.HomeID(r.PathValue("id")), device.ID(r.PathValue("dev"))); err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"failed": r.PathValue("dev")})
	})
	mux.HandleFunc("POST /homes/{id}/devices/{dev}/restore", func(w http.ResponseWriter, r *http.Request) {
		if err := m.RestoreDevice(manager.HomeID(r.PathValue("id")), device.ID(r.PathValue("dev"))); err != nil {
			writeManagerError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"restored": r.PathValue("dev")})
	})
	return mux
}

func plugDevices(n int) []device.Info { return device.Plugs(n).All() }

// writeManagerError maps manager errors onto HTTP statuses. A full home
// mailbox surfaces as 429 Too Many Requests: the home is overloaded and the
// client should back off and retry, instead of the old behavior of blocking
// the request goroutine until the shard caught up. A poisoned, restarting or
// quarantined home is 503 Service Unavailable with a Retry-After hint — the
// supervisor is (or gave up) bringing it back, and other homes on the shard
// keep serving.
func writeManagerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, manager.ErrUnknownHome):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, manager.ErrDuplicateHome):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, manager.ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, manager.ErrClosed),
		errors.Is(err, manager.ErrRestarting),
		errors.Is(err, manager.ErrQuarantined),
		errors.Is(err, manager.ErrPoisoned):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// --- JSON views ---------------------------------------------------------------

type resultView struct {
	ID          routine.ID `json:"id"`
	Name        string     `json:"name"`
	Status      string     `json:"status"`
	Submitted   time.Time  `json:"submitted"`
	Started     time.Time  `json:"started,omitempty"`
	Finished    time.Time  `json:"finished,omitempty"`
	LatencyMS   int64      `json:"latency_ms,omitempty"`
	Executed    int        `json:"executed"`
	Skipped     int        `json:"skipped,omitempty"`
	BestEffort  int        `json:"best_effort_failures,omitempty"`
	RolledBack  int        `json:"rolled_back,omitempty"`
	AbortReason string     `json:"abort_reason,omitempty"`
}

func resultJSON(res visibility.Result) resultView {
	v := resultView{
		ID:          res.ID,
		Status:      res.Status.String(),
		Submitted:   res.Submitted,
		Started:     res.Started,
		Finished:    res.Finished,
		Executed:    res.Executed,
		Skipped:     res.Skipped,
		BestEffort:  res.BestEffortFailures,
		RolledBack:  res.RolledBack,
		AbortReason: res.AbortReason,
	}
	if res.Routine != nil {
		v.Name = res.Routine.Name
	}
	if res.Status == visibility.StatusCommitted {
		v.LatencyMS = res.Latency().Milliseconds()
	}
	return v
}

func resultsJSON(results []visibility.Result) []resultView {
	out := make([]resultView, 0, len(results))
	for _, res := range results {
		out = append(out, resultJSON(res))
	}
	return out
}

type eventView struct {
	Seq     uint64    `json:"seq,omitempty"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Routine int64     `json:"routine,omitempty"`
	Device  string    `json:"device,omitempty"`
	State   string    `json:"state,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

func eventsJSON(events []visibility.Event) []eventView {
	out := make([]eventView, 0, len(events))
	for _, e := range events {
		out = append(out, eventView{
			Time:    e.Time,
			Kind:    e.Kind.String(),
			Routine: int64(e.Routine),
			Device:  string(e.Device),
			State:   string(e.State),
			Detail:  e.Detail,
		})
	}
	return out
}

// eventsPageView is the cursor-paged events response: poll again with
// ?since=<next> to fetch only what happened after this page.
type eventsPageView struct {
	Events []eventView `json:"events"`
	Next   uint64      `json:"next"`
}

// eventsPage stamps each event with its sequence number (the page ends just
// before the next cursor, so sequences count back from it).
func eventsPage(events []visibility.Event, next uint64) eventsPageView {
	views := eventsJSON(events)
	first := next - uint64(len(views))
	for i := range views {
		views[i].Seq = first + uint64(i)
	}
	return eventsPageView{Events: views, Next: next}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// Back-pressure and outage statuses carry a Retry-After hint: overload
	// drains within milliseconds and a supervised restart completes within
	// the supervisor's backoff cap, so one second is a safe client pause.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

package hub

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/manager"
	"safehome/internal/telemetry"
	"safehome/internal/visibility"
)

// scrape GETs /metrics off a handler and returns the parsed families, failing
// the exposition through the package's own linter first.
func scrape(t *testing.T, srv http.Handler) map[string]*telemetry.Family {
	t.Helper()
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	if problems := telemetry.Lint(body); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	fams, err := telemetry.Parse(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return fams
}

// TestHubMetricsExpositionLints is the CI exposition gate for single-home
// mode: after real traffic the hub's /metrics page must parse, lint clean,
// and carry the in-loop stage histograms and breaker families.
func TestHubMetricsExpositionLints(t *testing.T) {
	h, _ := newTestHub(t)
	for i := 0; i < 5; i++ {
		if _, err := h.SubmitRoutine(coolingRoutine()); err != nil {
			t.Fatalf("SubmitRoutine: %v", err)
		}
	}
	waitIdle(t, h)

	fams := scrape(t, h.Handler())
	stage, ok := fams["safehome_routine_stage_seconds"]
	if !ok {
		t.Fatal("no safehome_routine_stage_seconds family")
	}
	counts := map[string]float64{}
	for _, s := range stage.Samples {
		if s.Name == "safehome_routine_stage_seconds_count" {
			counts[s.Labels["stage"]] = s.Value
		}
	}
	if counts["place"] < 5 {
		t.Errorf("stage=place count = %v, want >= 5", counts["place"])
	}
	if counts["done"] < 5 {
		t.Errorf("stage=done count = %v, want >= 5 (observer tap not wired?)", counts["done"])
	}
	if tot := telemetry.CounterTotals(fams); tot["safehome_mailbox_accepted_total"] < 5 {
		t.Errorf("mailbox accepted = %v, want >= 5", tot["safehome_mailbox_accepted_total"])
	}
	if _, ok := fams["safehome_breaker_open"]; !ok {
		t.Error("no per-device safehome_breaker_open family")
	}
}

// TestManagerMetricsExpositionLints is the same gate for fleet mode,
// against a journaled group-tier manager so the journal families carry
// real fsync/append counts.
func TestManagerMetricsExpositionLints(t *testing.T) {
	m := manager.New(manager.Config{
		Shards:  2,
		DataDir: t.TempDir(),
		Journal: journal.Options{Mode: journal.ModeGroup},
		Home:    manager.HomeConfig{Model: visibility.EV},
	})
	t.Cleanup(m.Close)
	if err := m.AddHome("apt-1", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"routine_name":"lights","commands":[{"device":"plug-0","action":"ON"}]}`)
	for i := 0; i < 5; i++ {
		if _, err := m.SubmitSpec("apt-1", spec); err != nil {
			t.Fatal(err)
		}
	}

	fams := scrape(t, ManagerHandler(m, 2))
	tot := telemetry.CounterTotals(fams)
	if tot["safehome_manager_submitted_total"] < 5 {
		t.Errorf("manager submitted = %v, want >= 5", tot["safehome_manager_submitted_total"])
	}
	if tot["safehome_journal_appends_total"] == 0 {
		t.Error("journaled manager scraped zero journal appends")
	}
	if tot["safehome_journal_fsyncs_total"] == 0 {
		t.Error("journaled group-tier manager scraped zero fsyncs")
	}
	homes, ok := fams["safehome_homes"]
	if !ok {
		t.Fatal("no safehome_homes state gauge family")
	}
	byState := map[string]float64{}
	for _, s := range homes.Samples {
		byState[s.Labels["state"]] = s.Value
	}
	if byState["live"] != 1 || byState["frozen"] != 0 {
		t.Errorf("safehome_homes = %v, want live=1 frozen=0", byState)
	}
}

// TestMetricsScrapeUnderLoad races scrapes against live submit traffic
// (run under -race in CI): every exposition must parse and lint clean
// mid-write, histogram +Inf must equal _count (Lint checks both), and
// counters must be monotone across successive scrapes.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	m := manager.New(manager.Config{
		Shards:  4,
		DataDir: t.TempDir(),
		Journal: journal.Options{Mode: journal.ModeGroup},
		Home:    manager.HomeConfig{Model: visibility.EV},
	})
	t.Cleanup(m.Close)
	const homes = 8
	for i := 0; i < homes; i++ {
		id := manager.HomeID(fmt.Sprintf("apt-%d", i))
		if err := m.AddHome(id, device.Plugs(2).All()...); err != nil {
			t.Fatal(err)
		}
	}
	srv := ManagerHandler(m, 2)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := []byte(`{"routine_name":"load","commands":[{"device":"plug-1","action":"ON"}]}`)
			for i := 0; i < 40; i++ {
				id := manager.HomeID(fmt.Sprintf("apt-%d", (w*40+i)%homes))
				if _, err := m.SubmitSpec(id, spec); err != nil {
					errs <- fmt.Errorf("submit: %w", err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := map[string]float64{}
			for i := 0; i < 25; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("scrape %d: status %d", i, rec.Code)
					return
				}
				body := rec.Body.String()
				if problems := telemetry.Lint(body); len(problems) != 0 {
					errs <- fmt.Errorf("scrape %d lint: %v", i, problems)
					return
				}
				fams, err := telemetry.Parse(body)
				if err != nil {
					errs <- fmt.Errorf("scrape %d parse: %w", i, err)
					return
				}
				for name, v := range telemetry.CounterTotals(fams) {
					if v < prev[name] {
						errs <- fmt.Errorf("scrape %d: counter %s went backwards %v -> %v", i, name, prev[name], v)
						return
					}
					prev[name] = v
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Final quiesced scrape: everything submitted is visible.
	tot := telemetry.CounterTotals(scrape(t, srv))
	if tot["safehome_manager_submitted_total"] < 160 {
		t.Errorf("submitted total = %v, want >= 160", tot["safehome_manager_submitted_total"])
	}
}

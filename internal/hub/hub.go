// Package hub implements the SafeHome edge hub of Fig 11 as a front-end
// over a single wall-clock home runtime (internal/runtime): the routine
// bank, the routine dispatcher, the concurrency controller for the
// configured visibility model, the device driver and the failure detector
// all live inside the runtime, and the hub exposes them through a typed API
// and HTTP surface.
//
// There is no hub lock: every operation is a typed op posted into the
// runtime's mailbox, and the live environment delivers command completions
// and timer callbacks through the same mailbox, so the controller keeps its
// single-threaded execution model end to end. When the mailbox is full,
// mutating operations return ErrOverloaded (HTTP 429) instead of blocking.
// The hub also hosts the multi-tenant HTTP surface (ManagerHandler) that
// routes home-scoped requests through internal/manager.
//
// See ARCHITECTURE.md at the repository root for how the hub layers between
// the public API, the manager and the unified home runtime.
package hub

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/failure"
	"safehome/internal/journal"
	"safehome/internal/live"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

// Errors surfaced by the runtime's admission control, re-exported for the
// hub's callers (the root safehome package and the HTTP layer).
var (
	// ErrOverloaded is returned when the hub's mailbox is full (HTTP 429).
	ErrOverloaded = rt.ErrOverloaded
	// ErrClosed is returned by mutating calls after Close.
	ErrClosed = rt.ErrClosed
	// ErrPoisoned is returned to operations parked in the runtime when its
	// loop panicked; the hub's supervisor is already restarting it (HTTP 503).
	ErrPoisoned = rt.ErrPoisoned
)

// ReadConsistency selects how the hub answers read-only queries; re-exported
// from the home runtime for the hub's callers.
type ReadConsistency = rt.ReadConsistency

// Read-consistency modes.
const (
	// ReadSnapshot (default) answers queries from the loop's latest published
	// snapshot, off the mailbox entirely.
	ReadSnapshot = rt.ReadSnapshot
	// ReadLinearizable posts every query through the mailbox.
	ReadLinearizable = rt.ReadLinearizable
)

// Config configures a hub.
type Config struct {
	// Model is the visibility model to enforce (default EV).
	Model visibility.Model
	// Scheduler is the EV scheduling policy (default Timeline).
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// FailureInterval is the failure detector's probe period (default 1s).
	FailureInterval time.Duration
	// EventLog caps the in-memory activity log (default 1024 events).
	EventLog int
	// MailboxDepth bounds the runtime's operation mailbox (default 128).
	MailboxDepth int
	// Batch is the maximum operations drained per loop wakeup (default 32).
	Batch int
	// ReadConsistency selects how queries are answered (default
	// ReadSnapshot: status polls never touch the mailbox).
	ReadConsistency ReadConsistency
	// DataDir enables durability: the hub's runtime group-commits accepted
	// operations, outcomes, committed states and event sequence numbers to a
	// write-ahead journal under this directory and recovers them on the next
	// start with the same directory (routines in flight at a crash come back
	// Aborted). Empty keeps the hub memory-only.
	DataDir string
	// Journal tunes the write-ahead journal; only meaningful with DataDir.
	// Journal.Mode selects the durability tier: the hub defaults to sync
	// (one home, one fsync per drain — coalescing buys nothing); group
	// routes commits through a hub-owned shared writer that survives
	// supervised restarts; async acknowledges ahead of the disk behind
	// Journal.AsyncWindowBytes.
	Journal journal.Options
	// Actuation tunes the device path: per-command timeout, retry policy and
	// the per-device circuit breaker that sheds commands to devices that keep
	// timing out instead of tying the loop's in-flight slots to them.
	Actuation live.Options
	// Supervisor tunes panic recovery: when the runtime's loop panics the hub
	// poisons it, tears it down and restarts it (from the journal when
	// durable, empty otherwise) with capped exponential backoff, then
	// quarantines after MaxRestarts consecutive failures. The zero value
	// enables supervision with defaults; set Supervisor.Disable to let the
	// poison stand without restarting.
	Supervisor rt.SupervisorConfig
}

func (c Config) normalized() Config {
	if c.DefaultShort <= 0 {
		c.DefaultShort = visibility.DefaultShortCommand
	}
	if c.FailureInterval <= 0 {
		c.FailureInterval = failure.DefaultInterval
	}
	if c.EventLog <= 0 {
		c.EventLog = 1024
	}
	return c
}

// Hub is a running SafeHome instance: a thin front-end over one home
// runtime. The runtime pointer is swapped atomically by the hub's
// supervisor when a panic poisons a generation, so API calls racing a
// restart see either the old (poisoned, fast-failing) or the new runtime —
// never a torn hub.
type Hub struct {
	cfg      Config
	reg      *device.Registry
	actuator device.Actuator
	cur      atomic.Pointer[rt.HomeRuntime]
	sup      *rt.Supervisor

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	restartCh chan struct{}
	detecting atomic.Bool // Start was called: restarted generations re-arm the detector

	// Durability tier wiring: in group mode the hub owns one shared writer
	// that outlives supervised runtime generations (each rebuilt runtime
	// re-attaches to it); durErr records a failed writer open, after which
	// the hub degrades to sync. lastPoison mirrors the manager's per-home
	// forensics for Status.
	durability journal.Mode
	writer     *journal.GroupWriter
	durErr     error
	lastPoison atomic.Pointer[rt.PoisonRecord]

	// tel is the /metrics surface. It outlives runtime generations, so a
	// supervised restart keeps appending to the same histograms.
	tel *hubTelemetry

	started time.Time
}

// New builds a hub controlling the registered devices through the actuator
// (the kasa driver for networked plugs, or an in-memory fleet for tests and
// demos).
func New(cfg Config, reg *device.Registry, actuator device.Actuator) (*Hub, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("hub: no devices registered")
	}
	if actuator == nil {
		return nil, fmt.Errorf("hub: nil actuator")
	}
	cfg = cfg.normalized()

	h := &Hub{
		cfg:      cfg,
		reg:      reg,
		actuator: actuator,
		sup:      rt.NewSupervisor(cfg.Supervisor),
		stop:     make(chan struct{}),
		// One runtime means at most one poison per generation; a buffer of one
		// never drops a restart request.
		restartCh: make(chan struct{}, 1),
		started:   time.Now(),
	}
	h.tel = newHubTelemetry(h)
	if cfg.DataDir != "" {
		h.durability = journal.ResolveMode(cfg.Journal, journal.ModeSync)
		h.lastPoison.Store(rt.LoadPoisonRecord(cfg.DataDir))
		if h.durability == journal.ModeGroup {
			writers, err := journal.OpenWriters(filepath.Join(cfg.DataDir, "wal"), 1, journal.WriterOptions{
				SegmentBytes: cfg.Journal.SegmentBytes,
				OnSync:       cfg.Journal.OnSync,
				Stats:        &h.tel.jstats,
				OnCycle: func(bytes int64, commits int) {
					h.tel.cycleBytes.Observe(float64(bytes))
					h.tel.cycleCommits.Observe(float64(commits))
				},
			})
			if err != nil {
				h.durErr = err
				h.durability = journal.ModeSync
			} else {
				h.writer = writers[0]
			}
		}
	}
	runtime, err := h.buildRuntime()
	if err != nil {
		if h.writer != nil {
			h.writer.Abandon()
		}
		return nil, fmt.Errorf("hub: %w", err)
	}
	h.cur.Store(runtime)
	if !cfg.Supervisor.Disable {
		h.wg.Add(1)
		go h.runSupervisor()
	}
	return h, nil
}

// buildRuntime constructs one runtime generation. With a DataDir each new
// generation recovers the previous one's acknowledged work from the journal.
func (h *Hub) buildRuntime() (*rt.HomeRuntime, error) {
	cfg := rt.Config{
		ID:              "hub",
		Model:           h.cfg.Model,
		Scheduler:       h.cfg.Scheduler,
		DefaultShort:    h.cfg.DefaultShort,
		FailureInterval: h.cfg.FailureInterval,
		EventLog:        h.cfg.EventLog,
		MailboxDepth:    h.cfg.MailboxDepth,
		Batch:           h.cfg.Batch,
		ReadConsistency: h.cfg.ReadConsistency,
		DataDir:         h.cfg.DataDir,
		Journal:         h.cfg.Journal,
		Actuation:       h.cfg.Actuation,
	}
	cfg.Journal.Mode = h.durability
	cfg.Journal.Writer = h.writer
	cfg.Journal.Stats = &h.tel.jstats
	cfg.Metrics = h.tel.loop
	if !h.cfg.Supervisor.Disable {
		cfg.OnPoison = h.notifyPoison
	}
	return rt.NewLive(cfg, h.reg, h.actuator)
}

// notifyPoison runs on the dying runtime's loop goroutine.
func (h *Hub) notifyPoison(err error) {
	h.sup.NotePoison(err)
	if rec := h.cur.Load().PoisonRecord(); rec != nil {
		h.lastPoison.Store(rec)
	}
	select {
	case h.restartCh <- struct{}{}:
	default:
	}
}

// runSupervisor restarts poisoned runtime generations until Close (or the
// restart budget quarantines the hub).
func (h *Hub) runSupervisor() {
	defer h.wg.Done()
	for {
		select {
		case <-h.stop:
			return
		case <-h.restartCh:
			h.superviseRestart()
		}
	}
}

func (h *Hub) superviseRestart() {
	// Join the dead loop; the poison teardown already closed the mailbox and
	// released the journal, so the data directory is free for the successor.
	h.cur.Load().Close()
	ok := h.sup.Restart(h.stop, func() error {
		runtime, err := h.buildRuntime()
		if err != nil {
			return err
		}
		h.cur.Store(runtime)
		return nil
	})
	if ok {
		// Clean restart: retire the poison forensics, on disk and in Status.
		if h.cfg.DataDir != "" {
			rt.ClearPoisonRecord(h.cfg.DataDir)
		}
		h.lastPoison.Store(nil)
	}
	if ok && h.detecting.Load() {
		h.cur.Load().Start()
	}
}

// Start launches the failure detector's probe loop.
func (h *Hub) Start() {
	h.detecting.Store(true)
	h.cur.Load().Start()
}

// Close stops background activity (supervision, failure detection and
// scheduled triggers), waits for in-flight commands and drains the runtime.
// After Close, mutating calls return ErrClosed; reads answer from the
// quiesced state.
func (h *Hub) Close() {
	h.closeOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
	h.cur.Load().Close()
	if h.writer != nil {
		_ = h.writer.Close() // after the runtime: its Close waits on the covering sync
	}
}

// Crash kills the hub without draining: no shutdown checkpoint, no waiting
// for in-flight routines — the SIGKILL-equivalent for crash-recovery drills.
// Operations parked in the mailbox are answered ErrClosed. A hub running
// with a data directory recovers acknowledged work exactly when a new hub
// reopens the same directory; everything in flight comes back aborted.
func (h *Hub) Crash() {
	h.closeOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
	h.cur.Load().Crash()
	if h.writer != nil {
		h.writer.Abandon() // no final sync: only covered bytes survive
	}
}

// Health reports the hub's supervision state: ok, degraded (serving but the
// journal died — memory-only until restart), restarting (poisoned, being
// rebuilt) or quarantined (restart budget exhausted).
func (h *Hub) Health() rt.HomeHealth {
	return h.sup.Health(h.cur.Load().JournalError() == nil)
}

// Serving reports whether the hub can take requests right now.
func (h *Hub) Serving() bool { return h.sup.Serving() }

// Model returns the hub's visibility model.
func (h *Hub) Model() visibility.Model { return h.cfg.Model }

// Registry returns the device registry.
func (h *Hub) Registry() *device.Registry { return h.reg }

// Detector exposes the failure detector (CLI status, tests).
func (h *Hub) Detector() *failure.Detector { return h.cur.Load().Detector() }

// Runtime exposes the current home runtime generation (mailbox stats,
// tests). Callers should not cache it across a restart.
func (h *Hub) Runtime() *rt.HomeRuntime { return h.cur.Load() }

// SubmitRoutine validates and submits a routine for execution. It returns
// ErrOverloaded when the hub's mailbox is full.
func (h *Hub) SubmitRoutine(r *routine.Routine) (routine.ID, error) {
	return h.cur.Load().Submit(r)
}

// SubmitSpec parses a Fig 10-style JSON routine document and submits it.
func (h *Hub) SubmitSpec(spec []byte) (routine.ID, error) {
	r, err := routine.ParseSpec(spec)
	if err != nil {
		return routine.None, err
	}
	return h.SubmitRoutine(r)
}

// StoreRoutine saves a routine definition in the routine bank. On a durable
// hub the definition is journaled, so stored routines survive restarts.
func (h *Hub) StoreRoutine(r *routine.Routine) error {
	return h.cur.Load().StoreRoutine(r)
}

// StoredRoutines lists the names in the routine bank.
func (h *Hub) StoredRoutines() []string { return h.cur.Load().Bank().Names() }

// Trigger dispatches a stored routine by name (the "Routine Dispatcher" of
// Fig 11 invoked by a user or an automation trigger).
func (h *Hub) Trigger(name string) (routine.ID, error) {
	r, ok := h.cur.Load().Bank().Get(name)
	if !ok {
		return routine.None, fmt.Errorf("hub: no stored routine named %q", name)
	}
	return h.SubmitRoutine(r)
}

// Results returns per-routine outcomes in submission order.
func (h *Hub) Results() []visibility.Result { return h.cur.Load().Results() }

// Result returns one routine's outcome.
func (h *Hub) Result(id routine.ID) (visibility.Result, bool) { return h.cur.Load().Result(id) }

// PendingCount returns the number of unfinished routines.
func (h *Hub) PendingCount() int { return h.cur.Load().PendingCount() }

// Events returns a copy of the recent activity log.
func (h *Hub) Events() []visibility.Event { return h.cur.Load().Events() }

// EventsSince returns the retained events with sequence number >= since and
// the cursor to pass on the next poll, so pollers fetch only the tail.
func (h *Hub) EventsSince(since uint64) ([]visibility.Event, uint64) {
	return h.cur.Load().EventsSince(since)
}

// DeviceStatus describes one device for the API and CLI. Breaker is the
// device's circuit-breaker state ("closed" when healthy; "open" while the
// actuation path sheds commands to it; "half-open" while probing recovery).
type DeviceStatus struct {
	Info    device.Info  `json:"info"`
	State   device.State `json:"state"`
	Up      bool         `json:"up"`
	Breaker string       `json:"breaker,omitempty"`
}

// Devices reports every device's committed state (the controller's view),
// liveness and actuation-path breaker state.
func (h *Hub) Devices() []DeviceStatus {
	runtime := h.cur.Load()
	committed := runtime.CommittedStates()
	detector := runtime.Detector()
	breakers := make(map[device.ID]string)
	for _, b := range runtime.Breakers() {
		breakers[b.Device] = b.State
	}

	infos := h.reg.All()
	out := make([]DeviceStatus, 0, len(infos))
	for _, info := range infos {
		st, ok := committed[info.ID]
		if !ok {
			st = info.Initial
		}
		out = append(out, DeviceStatus{
			Info:    info,
			State:   st,
			Up:      detector.Up(info.ID),
			Breaker: breakers[info.ID],
		})
	}
	return out
}

// Status summarizes the hub for the API and CLI.
type Status struct {
	Model     string              `json:"model"`
	Scheduler string              `json:"scheduler"`
	Health    rt.HomeHealth       `json:"health"`
	Poisons   int64               `json:"poisons,omitempty"`
	Restarts  int64               `json:"restarts,omitempty"`
	LastError string              `json:"last_error,omitempty"`
	Devices   int                 `json:"devices"`
	Routines  int                 `json:"routines"`
	Pending   int                 `json:"pending"`
	Active    int                 `json:"active"`
	Stored    int                 `json:"stored_routines"`
	Mailbox   rt.MailboxStats     `json:"mailbox"`
	Breakers  []live.BreakerStats `json:"breakers,omitempty"`
	Durable   bool                `json:"durable,omitempty"`
	// Durability is the journal tier actually in effect (sync/group/async);
	// DurabilityError records why a requested group writer degraded to sync.
	Durability      string           `json:"durability,omitempty"`
	DurabilityError string           `json:"durability_error,omitempty"`
	LastPoison      *rt.PoisonRecord `json:"last_poison,omitempty"`
	Since           time.Time        `json:"since"`
}

// Status returns the hub summary. It answers while the hub is restarting or
// quarantined too, from the last generation's published snapshot.
func (h *Hub) Status() Status {
	runtime := h.cur.Load()
	c := runtime.Counts()
	st := Status{
		Model:     h.cfg.Model.String(),
		Scheduler: h.cfg.Scheduler.String(),
		Health:    h.Health(),
		Poisons:   h.sup.Poisons(),
		Restarts:  h.sup.Restarts(),
		Devices:   h.reg.Len(),
		Routines:  c.Routines,
		Pending:   c.Pending,
		Active:    c.Active,
		Stored:    runtime.Bank().Len(),
		Mailbox:   runtime.Mailbox(),
		Breakers:  runtime.Breakers(),
		Durable:   runtime.Durable(),
		Since:     h.started,
	}
	if h.cfg.DataDir != "" {
		st.Durability = h.durability.String()
		if h.durErr != nil {
			st.DurabilityError = h.durErr.Error()
		}
	}
	st.LastPoison = h.lastPoison.Load()
	if st.Health != rt.HealthOK {
		if err := h.sup.LastError(); err != nil {
			st.LastError = err.Error()
		} else if err := runtime.JournalError(); err != nil {
			st.LastError = err.Error()
		}
	}
	return st
}

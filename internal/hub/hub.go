// Package hub implements the SafeHome edge hub of Fig 11: it wires the
// routine bank, the routine dispatcher, the concurrency controller for the
// configured visibility model, the device driver and the failure detector
// together, and exposes an HTTP API for users and triggers.
//
// The hub serializes all controller access with one mutex; the live
// environment delivers command completions and timer callbacks under the same
// mutex, so the controller keeps its single-threaded execution model. The hub
// also hosts the multi-tenant HTTP surface (ManagerHandler) that routes
// home-scoped requests through internal/manager.
//
// See ARCHITECTURE.md at the repository root for how the hub layers between
// the public API, the manager and the visibility controllers.
package hub

import (
	"context"
	"fmt"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/failure"
	"safehome/internal/live"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// Config configures a hub.
type Config struct {
	// Model is the visibility model to enforce (default EV).
	Model visibility.Model
	// Scheduler is the EV scheduling policy (default Timeline).
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// FailureInterval is the failure detector's probe period (default 1s).
	FailureInterval time.Duration
	// EventLog caps the in-memory activity log (default 1024 events).
	EventLog int
}

func (c Config) normalized() Config {
	if c.DefaultShort <= 0 {
		c.DefaultShort = visibility.DefaultShortCommand
	}
	if c.FailureInterval <= 0 {
		c.FailureInterval = failure.DefaultInterval
	}
	if c.EventLog <= 0 {
		c.EventLog = 1024
	}
	return c
}

// Hub is a running SafeHome instance.
type Hub struct {
	cfg Config
	reg *device.Registry

	mu       sync.Mutex
	ctrl     visibility.Controller
	env      *live.Env
	bank     *routine.Bank
	detector *failure.Detector
	events   []visibility.Event

	cancelDetect context.CancelFunc
	started      time.Time

	triggerOnce sync.Once
	triggerSt   *triggerState
}

// New builds a hub controlling the registered devices through the actuator
// (the kasa driver for networked plugs, or an in-memory fleet for tests and
// demos).
func New(cfg Config, reg *device.Registry, actuator device.Actuator) (*Hub, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("hub: no devices registered")
	}
	if actuator == nil {
		return nil, fmt.Errorf("hub: nil actuator")
	}
	cfg = cfg.normalized()

	h := &Hub{cfg: cfg, reg: reg, bank: routine.NewBank(), started: time.Now()}
	h.env = live.New(&h.mu, actuator)

	opts := visibility.DefaultOptions(cfg.Model)
	opts.Scheduler = cfg.Scheduler
	opts.DefaultShort = cfg.DefaultShort
	opts.Observer = h.recordEvent

	// Seed the controller's committed-state view from the devices' initial
	// metadata; unknown initial states are left for the first routines to set.
	initial := make(map[device.ID]device.State)
	for _, info := range reg.All() {
		if info.Initial != device.StateUnknown {
			initial[info.ID] = info.Initial
		}
	}
	h.mu.Lock()
	h.ctrl = visibility.New(h.env, initial, opts)
	h.mu.Unlock()

	h.detector = failure.NewDetector(actuator, reg.IDs(), failure.Options{
		Interval:  cfg.FailureInterval,
		OnFailure: h.onDeviceFailure,
		OnRestart: h.onDeviceRestart,
	})
	h.env.OnContact = func(id device.ID, ok bool) {
		if ok {
			h.detector.ReportContact(id)
		} else {
			h.detector.ReportSilence(id)
		}
	}
	return h, nil
}

// recordEvent appends to the bounded activity log. It runs under h.mu (the
// controller only emits events from within its serialized context).
func (h *Hub) recordEvent(e visibility.Event) {
	h.events = append(h.events, e)
	if len(h.events) > h.cfg.EventLog {
		h.events = h.events[len(h.events)-h.cfg.EventLog:]
	}
}

func (h *Hub) onDeviceFailure(id device.ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ctrl.NotifyFailure(id)
}

func (h *Hub) onDeviceRestart(id device.ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ctrl.NotifyRestart(id)
}

// Start launches the failure detector's probe loop.
func (h *Hub) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	h.cancelDetect = cancel
	go h.detector.Run(ctx)
}

// Close stops background activity (failure detection and scheduled triggers)
// and waits for in-flight commands.
func (h *Hub) Close() {
	if h.cancelDetect != nil {
		h.cancelDetect()
	}
	h.stopTriggers()
	h.env.Wait()
}

// Model returns the hub's visibility model.
func (h *Hub) Model() visibility.Model { return h.cfg.Model }

// Registry returns the device registry.
func (h *Hub) Registry() *device.Registry { return h.reg }

// Detector exposes the failure detector (CLI status, tests).
func (h *Hub) Detector() *failure.Detector { return h.detector }

// SubmitRoutine validates and submits a routine for execution.
func (h *Hub) SubmitRoutine(r *routine.Routine) (routine.ID, error) {
	if err := r.Validate(h.reg); err != nil {
		return routine.None, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.Submit(r), nil
}

// SubmitSpec parses a Fig 10-style JSON routine document and submits it.
func (h *Hub) SubmitSpec(spec []byte) (routine.ID, error) {
	r, err := routine.ParseSpec(spec)
	if err != nil {
		return routine.None, err
	}
	return h.SubmitRoutine(r)
}

// StoreRoutine saves a routine definition in the routine bank.
func (h *Hub) StoreRoutine(r *routine.Routine) error {
	if err := r.Validate(h.reg); err != nil {
		return err
	}
	return h.bank.Store(r)
}

// StoredRoutines lists the names in the routine bank.
func (h *Hub) StoredRoutines() []string { return h.bank.Names() }

// Trigger dispatches a stored routine by name (the "Routine Dispatcher" of
// Fig 11 invoked by a user or an automation trigger).
func (h *Hub) Trigger(name string) (routine.ID, error) {
	r, ok := h.bank.Get(name)
	if !ok {
		return routine.None, fmt.Errorf("hub: no stored routine named %q", name)
	}
	return h.SubmitRoutine(r)
}

// Results returns per-routine outcomes in submission order.
func (h *Hub) Results() []visibility.Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.Results()
}

// Result returns one routine's outcome.
func (h *Hub) Result(id routine.ID) (visibility.Result, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.Result(id)
}

// PendingCount returns the number of unfinished routines.
func (h *Hub) PendingCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.PendingCount()
}

// Events returns a copy of the recent activity log.
func (h *Hub) Events() []visibility.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]visibility.Event(nil), h.events...)
}

// DeviceStatus describes one device for the API and CLI.
type DeviceStatus struct {
	Info  device.Info  `json:"info"`
	State device.State `json:"state"`
	Up    bool         `json:"up"`
}

// Devices reports every device's committed state (the controller's view) and
// liveness.
func (h *Hub) Devices() []DeviceStatus {
	h.mu.Lock()
	committed := h.ctrl.CommittedStates()
	h.mu.Unlock()

	infos := h.reg.All()
	out := make([]DeviceStatus, 0, len(infos))
	for _, info := range infos {
		st, ok := committed[info.ID]
		if !ok {
			st = info.Initial
		}
		out = append(out, DeviceStatus{Info: info, State: st, Up: h.detector.Up(info.ID)})
	}
	return out
}

// Status summarizes the hub for the API and CLI.
type Status struct {
	Model     string    `json:"model"`
	Scheduler string    `json:"scheduler"`
	Devices   int       `json:"devices"`
	Routines  int       `json:"routines"`
	Pending   int       `json:"pending"`
	Active    int       `json:"active"`
	Stored    int       `json:"stored_routines"`
	Since     time.Time `json:"since"`
}

// Status returns the hub summary.
func (h *Hub) Status() Status {
	h.mu.Lock()
	results := h.ctrl.Results()
	pending := h.ctrl.PendingCount()
	active := h.ctrl.ActiveCount()
	h.mu.Unlock()
	return Status{
		Model:     h.cfg.Model.String(),
		Scheduler: h.cfg.Scheduler.String(),
		Devices:   h.reg.Len(),
		Routines:  len(results),
		Pending:   pending,
		Active:    active,
		Stored:    h.bank.Len(),
		Since:     h.started,
	}
}

// Package hub implements the SafeHome edge hub of Fig 11 as a front-end
// over a single wall-clock home runtime (internal/runtime): the routine
// bank, the routine dispatcher, the concurrency controller for the
// configured visibility model, the device driver and the failure detector
// all live inside the runtime, and the hub exposes them through a typed API
// and HTTP surface.
//
// There is no hub lock: every operation is a typed op posted into the
// runtime's mailbox, and the live environment delivers command completions
// and timer callbacks through the same mailbox, so the controller keeps its
// single-threaded execution model end to end. When the mailbox is full,
// mutating operations return ErrOverloaded (HTTP 429) instead of blocking.
// The hub also hosts the multi-tenant HTTP surface (ManagerHandler) that
// routes home-scoped requests through internal/manager.
//
// See ARCHITECTURE.md at the repository root for how the hub layers between
// the public API, the manager and the unified home runtime.
package hub

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/failure"
	"safehome/internal/journal"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

// Errors surfaced by the runtime's admission control, re-exported for the
// hub's callers (the root safehome package and the HTTP layer).
var (
	// ErrOverloaded is returned when the hub's mailbox is full (HTTP 429).
	ErrOverloaded = rt.ErrOverloaded
	// ErrClosed is returned by mutating calls after Close.
	ErrClosed = rt.ErrClosed
)

// ReadConsistency selects how the hub answers read-only queries; re-exported
// from the home runtime for the hub's callers.
type ReadConsistency = rt.ReadConsistency

// Read-consistency modes.
const (
	// ReadSnapshot (default) answers queries from the loop's latest published
	// snapshot, off the mailbox entirely.
	ReadSnapshot = rt.ReadSnapshot
	// ReadLinearizable posts every query through the mailbox.
	ReadLinearizable = rt.ReadLinearizable
)

// Config configures a hub.
type Config struct {
	// Model is the visibility model to enforce (default EV).
	Model visibility.Model
	// Scheduler is the EV scheduling policy (default Timeline).
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// FailureInterval is the failure detector's probe period (default 1s).
	FailureInterval time.Duration
	// EventLog caps the in-memory activity log (default 1024 events).
	EventLog int
	// MailboxDepth bounds the runtime's operation mailbox (default 128).
	MailboxDepth int
	// Batch is the maximum operations drained per loop wakeup (default 32).
	Batch int
	// ReadConsistency selects how queries are answered (default
	// ReadSnapshot: status polls never touch the mailbox).
	ReadConsistency ReadConsistency
	// DataDir enables durability: the hub's runtime group-commits accepted
	// operations, outcomes, committed states and event sequence numbers to a
	// write-ahead journal under this directory and recovers them on the next
	// start with the same directory (routines in flight at a crash come back
	// Aborted). Empty keeps the hub memory-only.
	DataDir string
	// Journal tunes the write-ahead journal; only meaningful with DataDir.
	Journal journal.Options
}

func (c Config) normalized() Config {
	if c.DefaultShort <= 0 {
		c.DefaultShort = visibility.DefaultShortCommand
	}
	if c.FailureInterval <= 0 {
		c.FailureInterval = failure.DefaultInterval
	}
	if c.EventLog <= 0 {
		c.EventLog = 1024
	}
	return c
}

// Hub is a running SafeHome instance: a thin front-end over one home
// runtime.
type Hub struct {
	cfg Config
	reg *device.Registry
	rt  *rt.HomeRuntime

	started time.Time
}

// New builds a hub controlling the registered devices through the actuator
// (the kasa driver for networked plugs, or an in-memory fleet for tests and
// demos).
func New(cfg Config, reg *device.Registry, actuator device.Actuator) (*Hub, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("hub: no devices registered")
	}
	if actuator == nil {
		return nil, fmt.Errorf("hub: nil actuator")
	}
	cfg = cfg.normalized()

	runtime, err := rt.NewLive(rt.Config{
		ID:              "hub",
		Model:           cfg.Model,
		Scheduler:       cfg.Scheduler,
		DefaultShort:    cfg.DefaultShort,
		FailureInterval: cfg.FailureInterval,
		EventLog:        cfg.EventLog,
		MailboxDepth:    cfg.MailboxDepth,
		Batch:           cfg.Batch,
		ReadConsistency: cfg.ReadConsistency,
		DataDir:         cfg.DataDir,
		Journal:         cfg.Journal,
	}, reg, actuator)
	if err != nil {
		return nil, fmt.Errorf("hub: %w", err)
	}
	return &Hub{cfg: cfg, reg: reg, rt: runtime, started: time.Now()}, nil
}

// Start launches the failure detector's probe loop.
func (h *Hub) Start() { h.rt.Start() }

// Close stops background activity (failure detection and scheduled
// triggers), waits for in-flight commands and drains the runtime. After
// Close, mutating calls return ErrClosed; reads answer from the quiesced
// state.
func (h *Hub) Close() { h.rt.Close() }

// Crash kills the hub without draining: no shutdown checkpoint, no waiting
// for in-flight routines — the SIGKILL-equivalent for crash-recovery drills.
// Operations parked in the mailbox are answered ErrClosed. A hub running
// with a data directory recovers acknowledged work exactly when a new hub
// reopens the same directory; everything in flight comes back aborted.
func (h *Hub) Crash() { h.rt.Crash() }

// Model returns the hub's visibility model.
func (h *Hub) Model() visibility.Model { return h.cfg.Model }

// Registry returns the device registry.
func (h *Hub) Registry() *device.Registry { return h.reg }

// Detector exposes the failure detector (CLI status, tests).
func (h *Hub) Detector() *failure.Detector { return h.rt.Detector() }

// Runtime exposes the underlying home runtime (mailbox stats, tests).
func (h *Hub) Runtime() *rt.HomeRuntime { return h.rt }

// SubmitRoutine validates and submits a routine for execution. It returns
// ErrOverloaded when the hub's mailbox is full.
func (h *Hub) SubmitRoutine(r *routine.Routine) (routine.ID, error) {
	return h.rt.Submit(r)
}

// SubmitSpec parses a Fig 10-style JSON routine document and submits it.
func (h *Hub) SubmitSpec(spec []byte) (routine.ID, error) {
	r, err := routine.ParseSpec(spec)
	if err != nil {
		return routine.None, err
	}
	return h.SubmitRoutine(r)
}

// StoreRoutine saves a routine definition in the routine bank.
func (h *Hub) StoreRoutine(r *routine.Routine) error {
	if err := r.Validate(h.reg); err != nil {
		return err
	}
	return h.rt.Bank().Store(r)
}

// StoredRoutines lists the names in the routine bank.
func (h *Hub) StoredRoutines() []string { return h.rt.Bank().Names() }

// Trigger dispatches a stored routine by name (the "Routine Dispatcher" of
// Fig 11 invoked by a user or an automation trigger).
func (h *Hub) Trigger(name string) (routine.ID, error) {
	r, ok := h.rt.Bank().Get(name)
	if !ok {
		return routine.None, fmt.Errorf("hub: no stored routine named %q", name)
	}
	return h.SubmitRoutine(r)
}

// Results returns per-routine outcomes in submission order.
func (h *Hub) Results() []visibility.Result { return h.rt.Results() }

// Result returns one routine's outcome.
func (h *Hub) Result(id routine.ID) (visibility.Result, bool) { return h.rt.Result(id) }

// PendingCount returns the number of unfinished routines.
func (h *Hub) PendingCount() int { return h.rt.PendingCount() }

// Events returns a copy of the recent activity log.
func (h *Hub) Events() []visibility.Event { return h.rt.Events() }

// EventsSince returns the retained events with sequence number >= since and
// the cursor to pass on the next poll, so pollers fetch only the tail.
func (h *Hub) EventsSince(since uint64) ([]visibility.Event, uint64) {
	return h.rt.EventsSince(since)
}

// DeviceStatus describes one device for the API and CLI.
type DeviceStatus struct {
	Info  device.Info  `json:"info"`
	State device.State `json:"state"`
	Up    bool         `json:"up"`
}

// Devices reports every device's committed state (the controller's view) and
// liveness.
func (h *Hub) Devices() []DeviceStatus {
	committed := h.rt.CommittedStates()
	detector := h.rt.Detector()

	infos := h.reg.All()
	out := make([]DeviceStatus, 0, len(infos))
	for _, info := range infos {
		st, ok := committed[info.ID]
		if !ok {
			st = info.Initial
		}
		out = append(out, DeviceStatus{Info: info, State: st, Up: detector.Up(info.ID)})
	}
	return out
}

// Status summarizes the hub for the API and CLI.
type Status struct {
	Model     string          `json:"model"`
	Scheduler string          `json:"scheduler"`
	Devices   int             `json:"devices"`
	Routines  int             `json:"routines"`
	Pending   int             `json:"pending"`
	Active    int             `json:"active"`
	Stored    int             `json:"stored_routines"`
	Mailbox   rt.MailboxStats `json:"mailbox"`
	Durable   bool            `json:"durable,omitempty"`
	Since     time.Time       `json:"since"`
}

// Status returns the hub summary.
func (h *Hub) Status() Status {
	c := h.rt.Counts()
	return Status{
		Model:     h.cfg.Model.String(),
		Scheduler: h.cfg.Scheduler.String(),
		Devices:   h.reg.Len(),
		Routines:  c.Routines,
		Pending:   c.Pending,
		Active:    c.Active,
		Stored:    h.rt.Bank().Len(),
		Mailbox:   h.rt.Mailbox(),
		Durable:   h.rt.Durable(),
		Since:     h.started,
	}
}

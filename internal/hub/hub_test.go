package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func testRegistry() *device.Registry {
	return device.NewRegistry(
		device.Info{ID: "window", Kind: device.KindWindow, Initial: device.Open},
		device.Info{ID: "ac", Kind: device.KindAC, Initial: device.Off},
		device.Info{ID: "light", Kind: device.KindLight, Initial: device.Off},
	)
}

func newTestHub(t *testing.T) (*Hub, *device.Fleet) {
	t.Helper()
	reg := testRegistry()
	fleet := device.NewFleet(reg)
	h, err := New(Config{Model: visibility.EV, DefaultShort: 5 * time.Millisecond,
		FailureInterval: 20 * time.Millisecond}, reg, fleet)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(h.Close)
	return h, fleet
}

func waitIdle(t *testing.T, h *Hub) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.PendingCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("hub did not drain in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func coolingRoutine() *routine.Routine {
	return routine.New("cooling",
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{Device: "ac", Target: device.On})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, device.NewRegistry(), device.NewFleet(device.NewRegistry())); err == nil {
		t.Error("New with empty registry should fail")
	}
	if _, err := New(Config{}, testRegistry(), nil); err == nil {
		t.Error("New with nil actuator should fail")
	}
}

func TestSubmitAndResults(t *testing.T) {
	h, fleet := newTestHub(t)
	id, err := h.SubmitRoutine(coolingRoutine())
	if err != nil {
		t.Fatalf("SubmitRoutine: %v", err)
	}
	waitIdle(t, h)

	res, ok := h.Result(id)
	if !ok || res.Status != visibility.StatusCommitted {
		t.Fatalf("result = %+v, %v; want committed", res, ok)
	}
	if st, _ := fleet.Status("window"); st != device.Closed {
		t.Errorf("window = %q, want CLOSED", st)
	}
	found := false
	for _, d := range h.Devices() {
		if d.Info.ID == "ac" {
			found = true
			if d.State != device.On || !d.Up {
				t.Errorf("ac status = %+v, want ON and up", d)
			}
		}
	}
	if !found {
		t.Error("Devices() missing ac")
	}
	if got := h.Status(); got.Routines != 1 || got.Pending != 0 || got.Model != "EV" {
		t.Errorf("Status = %+v", got)
	}
	if len(h.Events()) == 0 {
		t.Error("expected recorded events")
	}
}

func TestSubmitRejectsUnknownDevice(t *testing.T) {
	h, _ := newTestHub(t)
	_, err := h.SubmitRoutine(routine.New("bad", routine.Command{Device: "ghost", Target: device.On}))
	if err == nil {
		t.Fatal("submitting a routine with an unknown device should fail")
	}
}

func TestBankStoreAndTrigger(t *testing.T) {
	h, _ := newTestHub(t)
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatalf("StoreRoutine: %v", err)
	}
	if names := h.StoredRoutines(); len(names) != 1 || names[0] != "cooling" {
		t.Fatalf("StoredRoutines = %v", names)
	}
	id, err := h.Trigger("cooling")
	if err != nil || id == routine.None {
		t.Fatalf("Trigger: %v (id %d)", err, id)
	}
	if _, err := h.Trigger("missing"); err == nil {
		t.Error("triggering a missing routine should fail")
	}
	waitIdle(t, h)
}

func TestFailureDetectorIntegration(t *testing.T) {
	h, fleet := newTestHub(t)
	h.Start()
	defer h.Close()

	if err := fleet.Fail("ac"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for h.Detector().Up("ac") {
		if time.Now().After(deadline) {
			t.Fatal("detector never noticed the AC failure")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A routine whose must command needs the dead AC aborts; the window close
	// is rolled back.
	id, err := h.SubmitRoutine(coolingRoutine())
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, h)
	res, _ := h.Result(id)
	if res.Status != visibility.StatusAborted {
		t.Fatalf("routine status = %v, want aborted (reason %q)", res.Status, res.AbortReason)
	}
}

// --- HTTP API ------------------------------------------------------------------

func TestHTTPAPIEndToEnd(t *testing.T) {
	h, _ := newTestHub(t)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	get := func(path string, into any) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decoding %s: %v", path, err)
			}
		}
		return resp
	}

	var status Status
	get("/api/status", &status)
	if status.Model != "EV" || status.Devices != 3 {
		t.Fatalf("status = %+v", status)
	}

	var devices []DeviceStatus
	get("/api/devices", &devices)
	if len(devices) != 3 {
		t.Fatalf("devices = %v", devices)
	}

	// Store a routine definition in the bank, then trigger it.
	spec, err := routine.MarshalSpec(coolingRoutine())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/bank", "application/json", bytes.NewReader(spec))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /api/bank = %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Post(srv.URL+"/api/bank/cooling/trigger", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST trigger = %v %v", resp.StatusCode, err)
	}
	var triggered struct {
		ID int64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&triggered); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Submit a second routine directly.
	resp, err = http.Post(srv.URL+"/api/routines", "application/json", bytes.NewReader(spec))
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/routines = %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	waitIdle(t, h)

	var results []map[string]any
	get("/api/routines", &results)
	if len(results) != 2 {
		t.Fatalf("results = %v, want 2 routines", results)
	}

	var one map[string]any
	get(fmt.Sprintf("/api/routines/%d", triggered.ID), &one)
	if one["status"] != "committed" {
		t.Fatalf("routine %d = %v, want committed", triggered.ID, one)
	}

	var events []map[string]any
	get("/api/events", &events)
	if len(events) == 0 {
		t.Fatal("no events reported")
	}

	// Error paths.
	if resp := get("/api/routines/999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing routine status = %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/api/routines", "application/json", bytes.NewReader([]byte("{")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad spec status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/api/bank/nope/trigger", "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trigger missing routine status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

package hub

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/manager"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

// wedge parks a runtime's loop and saturates its mailbox with submissions,
// so the next mutating request is deterministically load-shed. It returns
// the resume function and a WaitGroup joining the blocked submitters.
func wedge(t *testing.T, runtime *rt.HomeRuntime, depth int,
	submit func() error) (resume func(), wg *sync.WaitGroup) {
	t.Helper()
	resume, err := runtime.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	wg = &sync.WaitGroup{}
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := submit(); err != nil {
				t.Errorf("admitted submit failed: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.Mailbox().Depth < depth {
		if time.Now().After(deadline) {
			resume()
			t.Fatalf("mailbox depth = %d, never reached %d", runtime.Mailbox().Depth, depth)
		}
		time.Sleep(time.Millisecond)
	}
	return resume, wg
}

func TestHubHTTPSurfaces429UnderOverload(t *testing.T) {
	const depth = 4
	reg := testRegistry()
	fleet := device.NewFleet(reg)
	h, err := New(Config{Model: visibility.EV, DefaultShort: time.Millisecond,
		MailboxDepth: depth}, reg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	spec, err := routine.MarshalSpec(coolingRoutine())
	if err != nil {
		t.Fatal(err)
	}
	resume, wg := wedge(t, h.Runtime(), depth, func() error {
		_, err := h.SubmitRoutine(coolingRoutine())
		return err
	})

	// A full mailbox sheds the submission with 429 and counts the rejection.
	resp, err := http.Post(srv.URL+"/api/routines", "application/json", bytes.NewReader(spec))
	if err != nil {
		resume()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("POST /api/routines under overload = %d, want 429", resp.StatusCode)
	}
	if mb := h.Runtime().Mailbox(); mb.Rejected < 1 {
		t.Errorf("rejected counter = %d, want >= 1", mb.Rejected)
	}
	if _, err := h.SubmitRoutine(coolingRoutine()); !errors.Is(err, ErrOverloaded) {
		t.Errorf("SubmitRoutine under overload = %v, want ErrOverloaded", err)
	}

	// Drained, the same request is accepted again.
	resume()
	wg.Wait()
	resp, err = http.Post(srv.URL+"/api/routines", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("POST /api/routines after drain = %d, want 202", resp.StatusCode)
	}
	waitIdle(t, h)
}

func TestManagerHTTPSurfaces429UnderOverload(t *testing.T) {
	const depth = 4
	m := manager.New(manager.Config{Shards: 2, QueueDepth: depth})
	srv := httptest.NewServer(ManagerHandler(m, 2))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	if err := m.AddHome("apt-1", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	runtime, err := m.Runtime("apt-1")
	if err != nil {
		t.Fatal(err)
	}

	spec := []byte(`{"routine_name":"lights","commands":[{"device":"plug-0","action":"ON"}]}`)
	resume, wg := wedge(t, runtime, depth, func() error {
		_, err := m.SubmitSpec("apt-1", spec)
		return err
	})

	resp, err := http.Post(srv.URL+"/homes/apt-1/routines", "application/json", bytes.NewReader(spec))
	if err != nil {
		resume()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("POST routine under overload = %d, want 429", resp.StatusCode)
	}
	if _, err := m.SubmitSpec("apt-1", spec); !errors.Is(err, manager.ErrOverloaded) {
		t.Errorf("SubmitSpec under overload = %v, want ErrOverloaded", err)
	}
	if st := m.Status(); st.Rejected < 1 {
		t.Errorf("manager rejected counter = %d, want >= 1", st.Rejected)
	}

	// A different home on the same manager is unaffected by the overload.
	if err := m.AddHome("apt-2", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitSpec("apt-2", spec); err != nil {
		t.Errorf("submit to a healthy home during another home's overload: %v", err)
	}

	// Drained, the overloaded home accepts again and its work completed.
	resume()
	wg.Wait()
	resp, err = http.Post(srv.URL+"/homes/apt-1/routines", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("POST routine after drain = %d, want 202", resp.StatusCode)
	}
	results, err := m.Results("apt-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != depth+1 {
		t.Errorf("home has %d results after drain, want %d", len(results), depth+1)
	}
}

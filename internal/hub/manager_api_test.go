package hub

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"safehome/internal/manager"
)

func managerServer(t *testing.T) (*manager.Manager, *httptest.Server) {
	t.Helper()
	m := manager.New(manager.Config{Shards: 4})
	srv := httptest.NewServer(ManagerHandler(m, 2))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func doReq(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&decoded)
	return resp.StatusCode, decoded
}

func TestManagerHandlerHomeLifecycle(t *testing.T) {
	_, srv := managerServer(t)

	// Create a home.
	code, created := doReq(t, http.MethodPut, srv.URL+"/homes/apt-1?plugs=3", "")
	if code != http.StatusCreated {
		t.Fatalf("PUT /homes/apt-1 = %d, want 201 (%v)", code, created)
	}
	if created["id"] != "apt-1" || created["devices"] != float64(3) {
		t.Fatalf("created home = %v", created)
	}

	// Duplicate creation conflicts.
	if code, _ := doReq(t, http.MethodPut, srv.URL+"/homes/apt-1", ""); code != http.StatusConflict {
		t.Errorf("duplicate PUT = %d, want 409", code)
	}

	// Without ?plugs= the handler's configured default (2 here, the hub's
	// -plugs flag in production) applies.
	code, defaulted := doReq(t, http.MethodPut, srv.URL+"/homes/apt-2", "")
	if code != http.StatusCreated || defaulted["devices"] != float64(2) {
		t.Errorf("PUT without plugs = %d %v, want 201 with 2 devices", code, defaulted)
	}

	// Routines naming devices the home does not have are rejected at submit.
	badSpec := `{"routine_name":"ghost","commands":[{"device":"toaster","action":"ON"}]}`
	if code, _ := doReq(t, http.MethodPost, srv.URL+"/homes/apt-1/routines", badSpec); code != http.StatusBadRequest {
		t.Errorf("POST routine with unknown device = %d, want 400", code)
	}

	// Unknown home is 404.
	if code, _ := doReq(t, http.MethodGet, srv.URL+"/homes/nope/status", ""); code != http.StatusNotFound {
		t.Errorf("GET missing home = %d, want 404", code)
	}

	// Submit a routine; virtual clock means it is committed on return.
	spec := `{"routine_name":"lights","commands":[{"device":"plug-0","action":"ON"},{"device":"plug-1","action":"ON"}]}`
	code, sub := doReq(t, http.MethodPost, srv.URL+"/homes/apt-1/routines", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST routine = %d (%v), want 202", code, sub)
	}
	rid := int(sub["id"].(float64))

	code, res := doReq(t, http.MethodGet, fmt.Sprintf("%s/homes/apt-1/routines/%d", srv.URL, rid), "")
	if code != http.StatusOK || res["status"] != "committed" {
		t.Fatalf("GET routine = %d %v, want committed", code, res)
	}

	// Device states reflect the routine.
	code, states := doReq(t, http.MethodGet, srv.URL+"/homes/apt-1/devices", "")
	if code != http.StatusOK || states["plug-0"] != "ON" || states["plug-1"] != "ON" {
		t.Fatalf("GET devices = %d %v", code, states)
	}

	// Failure + restore round trip.
	if code, _ := doReq(t, http.MethodPost, srv.URL+"/homes/apt-1/devices/plug-2/fail", ""); code != http.StatusOK {
		t.Errorf("fail device = %d, want 200", code)
	}
	if code, _ := doReq(t, http.MethodPost, srv.URL+"/homes/apt-1/devices/plug-2/restore", ""); code != http.StatusOK {
		t.Errorf("restore device = %d, want 200", code)
	}

	// Manager status reflects totals.
	code, st := doReq(t, http.MethodGet, srv.URL+"/api/status", "")
	if code != http.StatusOK {
		t.Fatalf("GET /api/status = %d", code)
	}
	if st["homes"] != float64(2) || st["submitted"] != float64(1) || st["committed"] != float64(1) {
		t.Errorf("manager status = %v, want 2 homes / 1 submitted / 1 committed", st)
	}
}

func TestManagerHandlerHomesListing(t *testing.T) {
	m, srv := managerServer(t)
	if _, err := m.AddHomes("home", 6, 2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/homes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var homes []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&homes); err != nil {
		t.Fatal(err)
	}
	if len(homes) != 6 {
		t.Fatalf("GET /homes returned %d homes, want 6", len(homes))
	}
	for _, h := range homes {
		id := h["id"].(string)
		if int(h["shard"].(float64)) != m.ShardOf(manager.HomeID(id)) {
			t.Errorf("home %s listed on shard %v, ShardOf says %d", id, h["shard"], m.ShardOf(manager.HomeID(id)))
		}
	}
}

package hub

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/manager"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

func newSupervisedHub(t *testing.T, sup rt.SupervisorConfig) *Hub {
	t.Helper()
	reg := testRegistry()
	h, err := New(Config{Model: visibility.EV, DefaultShort: 5 * time.Millisecond,
		FailureInterval: time.Hour, Supervisor: sup}, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestHealthzAndReadyzWhenServing(t *testing.T) {
	h := newSupervisedHub(t, rt.SupervisorConfig{})
	srv := h.Handler()

	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", rec.Code)
	}
	rec := get(t, srv, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	if body.Status != string(rt.HealthOK) {
		t.Errorf("readyz status = %q, want %q", body.Status, rt.HealthOK)
	}
}

func TestReadyz503WhileRestartingThenRecovers(t *testing.T) {
	h := newSupervisedHub(t, rt.SupervisorConfig{
		Backoff: 300 * time.Millisecond, BackoffCap: 300 * time.Millisecond})
	srv := h.Handler()

	h.Runtime().PostTimer(func() { panic("test: injected fault") })

	// The restart backoff holds the hub unready long enough to observe.
	deadline := time.Now().Add(5 * time.Second)
	saw503 := false
	for !saw503 {
		if time.Now().After(deadline) {
			t.Fatal("never observed an unready window")
		}
		rec := get(t, srv, "/readyz")
		if rec.Code == http.StatusServiceUnavailable {
			saw503 = true
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Error("503 readyz carries no Retry-After header")
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Liveness is unaffected: the process is fine, one home is restarting.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("GET /healthz during restart = %d, want 200", rec.Code)
	}

	for {
		if time.Now().After(deadline) {
			t.Fatal("hub never became ready again")
		}
		if rec := get(t, srv, "/readyz"); rec.Code == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := h.Status()
	if st.Health != rt.HealthOK || st.Poisons < 1 || st.Restarts < 1 {
		t.Errorf("post-recovery status health=%s poisons=%d restarts=%d, want ok/>=1/>=1",
			st.Health, st.Poisons, st.Restarts)
	}
	// The restarted hub serves mutations again.
	if _, err := h.SubmitRoutine(coolingRoutine()); err != nil {
		t.Errorf("SubmitRoutine after supervised restart: %v", err)
	}
}

func TestManagerHealthEndpoints(t *testing.T) {
	m := manager.New(manager.Config{Shards: 2})
	t.Cleanup(m.Close)
	if err := m.AddHome("home-1", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	srv := ManagerHandler(m, 4)

	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", rec.Code)
	}
	rec := get(t, srv, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", rec.Code)
	}
	var body struct {
		Status      string `json:"status"`
		Homes       int    `json:"homes"`
		Poisons     int64  `json:"poisons"`
		Restarts    int64  `json:"restarts"`
		Quarantined int64  `json:"quarantined"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	if body.Status != "ok" {
		t.Errorf("manager readyz status = %q, want ok", body.Status)
	}
}

func TestRetryAfterOnBackpressureStatuses(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		rec := httptest.NewRecorder()
		writeError(rec, status, errors.New("test: shed"))
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Errorf("status %d carries no Retry-After", status)
		}
	}
	for _, status := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusConflict} {
		rec := httptest.NewRecorder()
		writeError(rec, status, errors.New("test: client error"))
		if ra := rec.Header().Get("Retry-After"); ra != "" {
			t.Errorf("status %d carries Retry-After %q, want none", status, ra)
		}
	}
}

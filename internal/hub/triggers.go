package hub

import (
	"time"

	rt "safehome/internal/runtime"
)

// Triggers are the automation half of the routine dispatcher (Fig 11). The
// implementation lives in internal/runtime: trigger state is owned by the
// runtime's loop goroutine and every scheduling, firing and cancellation is
// a typed mailbox operation, so the single-writer invariant has no
// exceptions (the old hub kept trigger state behind a private mutex). The
// hub re-exports the types and delegates.

// TriggerHandle identifies a scheduled trigger.
type TriggerHandle = rt.TriggerHandle

// ScheduledTrigger describes one active trigger.
type ScheduledTrigger = rt.ScheduledTrigger

// ScheduleAfter dispatches the named stored routine once, after the delay.
// On a durable hub the trigger is journaled and survives a restart: a
// pending trigger re-arms with its remaining delay.
func (h *Hub) ScheduleAfter(name string, delay time.Duration) (TriggerHandle, error) {
	return h.cur.Load().ScheduleAfter(name, delay)
}

// ScheduleEvery dispatches the named stored routine repeatedly at the given
// interval, starting one interval from now.
func (h *Hub) ScheduleEvery(name string, interval time.Duration) (TriggerHandle, error) {
	return h.cur.Load().ScheduleEvery(name, interval)
}

// CancelTrigger stops a scheduled trigger; it is not an error if the handle
// is unknown or already fired. It returns ErrOverloaded/ErrClosed when the
// cancellation could not be enqueued.
func (h *Hub) CancelTrigger(handle TriggerHandle) error {
	return h.cur.Load().CancelTrigger(handle)
}

// Triggers lists active scheduled triggers.
func (h *Hub) Triggers() []ScheduledTrigger { return h.cur.Load().Triggers() }

package hub

import (
	"fmt"
	"sync"
	"time"
)

// Triggers are the automation half of the routine dispatcher (Fig 11): a
// stored routine can be dispatched once after a delay (e.g. "run the trash
// routine at 11 pm") or repeatedly at a fixed interval (e.g. "every Monday
// night"), without a user in the loop. Triggers reference routines by name,
// so editing the stored definition affects future firings.

// TriggerHandle identifies a scheduled trigger.
type TriggerHandle int64

// ScheduledTrigger describes one active trigger.
type ScheduledTrigger struct {
	Handle    TriggerHandle `json:"handle"`
	Routine   string        `json:"routine"`
	Interval  time.Duration `json:"interval,omitempty"` // zero for one-shot triggers
	NextFire  time.Time     `json:"next_fire"`
	Fired     int           `json:"fired"`
	LastError string        `json:"last_error,omitempty"`
}

type trigger struct {
	spec  ScheduledTrigger
	timer *time.Timer
}

// triggerState is initialized lazily so Hub's zero-ish construction in New
// stays unchanged.
type triggerState struct {
	mu      sync.Mutex
	nextID  TriggerHandle
	active  map[TriggerHandle]*trigger
	stopped bool
}

func (h *Hub) triggers() *triggerState {
	h.triggerOnce.Do(func() {
		h.triggerSt = &triggerState{active: make(map[TriggerHandle]*trigger)}
	})
	return h.triggerSt
}

// ScheduleAfter dispatches the named stored routine once, after the delay.
func (h *Hub) ScheduleAfter(name string, delay time.Duration) (TriggerHandle, error) {
	return h.schedule(name, delay, 0)
}

// ScheduleEvery dispatches the named stored routine repeatedly at the given
// interval, starting one interval from now.
func (h *Hub) ScheduleEvery(name string, interval time.Duration) (TriggerHandle, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("hub: trigger interval must be positive")
	}
	return h.schedule(name, interval, interval)
}

func (h *Hub) schedule(name string, delay, interval time.Duration) (TriggerHandle, error) {
	if _, ok := h.bank.Get(name); !ok {
		return 0, fmt.Errorf("hub: no stored routine named %q", name)
	}
	if delay < 0 {
		delay = 0
	}
	ts := h.triggers()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.stopped {
		return 0, fmt.Errorf("hub: trigger scheduler is stopped")
	}
	ts.nextID++
	handle := ts.nextID
	tr := &trigger{spec: ScheduledTrigger{
		Handle:   handle,
		Routine:  name,
		Interval: interval,
		NextFire: time.Now().Add(delay),
	}}
	tr.timer = time.AfterFunc(delay, func() { h.fireTrigger(handle) })
	ts.active[handle] = tr
	return handle, nil
}

func (h *Hub) fireTrigger(handle TriggerHandle) {
	ts := h.triggers()
	ts.mu.Lock()
	tr, ok := ts.active[handle]
	if !ok || ts.stopped {
		ts.mu.Unlock()
		return
	}
	name := tr.spec.Routine
	ts.mu.Unlock()

	_, err := h.Trigger(name)

	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr, ok = ts.active[handle]
	if !ok {
		return
	}
	tr.spec.Fired++
	if err != nil {
		tr.spec.LastError = err.Error()
	} else {
		tr.spec.LastError = ""
	}
	if tr.spec.Interval > 0 && !ts.stopped {
		tr.spec.NextFire = time.Now().Add(tr.spec.Interval)
		tr.timer = time.AfterFunc(tr.spec.Interval, func() { h.fireTrigger(handle) })
	} else {
		delete(ts.active, handle)
	}
}

// CancelTrigger stops a scheduled trigger; it is not an error if the handle
// is unknown or already fired.
func (h *Hub) CancelTrigger(handle TriggerHandle) {
	ts := h.triggers()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if tr, ok := ts.active[handle]; ok {
		tr.timer.Stop()
		delete(ts.active, handle)
	}
}

// Triggers lists active scheduled triggers.
func (h *Hub) Triggers() []ScheduledTrigger {
	ts := h.triggers()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]ScheduledTrigger, 0, len(ts.active))
	for _, tr := range ts.active {
		out = append(out, tr.spec)
	}
	return out
}

// stopTriggers cancels every active trigger (called from Close).
func (h *Hub) stopTriggers() {
	ts := h.triggers()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.stopped = true
	for handle, tr := range ts.active {
		tr.timer.Stop()
		delete(ts.active, handle)
	}
}

// ResumeTriggers re-enables scheduling after a stop (mainly for tests that
// reuse a hub).
func (h *Hub) ResumeTriggers() {
	ts := h.triggers()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.stopped = false
}

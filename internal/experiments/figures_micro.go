// Implementations of the parameterized-microbenchmark artifacts: Figures 13
// through 17 and Table 3.
package experiments

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/harness"
	"safehome/internal/routine"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// microGen builds a Generator for Table-3 microbenchmark parameters, scaled
// down under Quick mode.
func microGen(p workload.MicroParams, o Options) harness.Generator {
	if o.Quick {
		p.Routines = 24
		p.Devices = 12
	}
	return func(seed int64) workload.Spec {
		p := p
		p.Seed = seed
		return workload.Micro(p)
	}
}

// Figure13 reproduces the failure/atomicity evaluation: abort rate and
// rollback overhead as functions of the Must-command percentage (at F=25%)
// and of the failed-device percentage (at M=100%), for GSV, S-GSV, PSV and EV.
func Figure13(o Options) []Table {
	o = o.normalized(10)
	mustSweep := []float64{0, 25, 50, 75, 100}
	failSweep := []float64{0, 10, 25, 50}
	if o.Quick {
		mustSweep = []float64{0, 100}
		failSweep = []float64{0, 25}
	}

	run := func(must, failed float64) []float64 {
		p := workload.DefaultMicroParams()
		p.MustPct = must
		p.FailedPct = failed
		p.Routines = 60
		var abortRates, rollbacks []float64
		for _, cfg := range harness.FailureConfigs() {
			agg := harness.RunTrials(microGen(p, o), cfg.Options, o.Trials, o.Seed)
			abortRates = append(abortRates, agg.AbortRate.Mean)
			rollbacks = append(rollbacks, agg.RollbackOverhead.Mean)
		}
		return append(abortRates, rollbacks...)
	}
	labels := []string{"GSV", "S-GSV", "PSV", "EV"}

	mkTable := func(id, title, xlabel string) Table {
		t := Table{ID: id, Title: title, Columns: append([]string{xlabel}, labels...)}
		return t
	}
	a := mkTable("fig13a", "Abort rate vs Must% (F=25%)", "must%")
	b := mkTable("fig13b", "Abort rate vs Failed% (M=100%)", "failed%")
	c := mkTable("fig13c", "Rollback overhead vs Must% (F=25%)", "must%")
	d := mkTable("fig13d", "Rollback overhead vs Failed% (M=100%)", "failed%")
	a.Notes = "paper: EV aborts slightly more (higher concurrency); see 13c/d for the intrusiveness comparison"
	d.Notes = "EV rolls back the smallest fraction of commands among all models"

	for _, must := range mustSweep {
		vals := run(must, 25)
		rowA := []string{fmt.Sprintf("%.0f", must)}
		rowC := []string{fmt.Sprintf("%.0f", must)}
		for i := range labels {
			rowA = append(rowA, fmtPct(vals[i]))
			rowC = append(rowC, fmtPct(vals[len(labels)+i]))
		}
		a.Rows = append(a.Rows, rowA)
		c.Rows = append(c.Rows, rowC)
	}
	for _, failed := range failSweep {
		vals := run(100, failed)
		rowB := []string{fmt.Sprintf("%.0f", failed)}
		rowD := []string{fmt.Sprintf("%.0f", failed)}
		for i := range labels {
			rowB = append(rowB, fmtPct(vals[i]))
			rowD = append(rowD, fmtPct(vals[len(labels)+i]))
		}
		b.Rows = append(b.Rows, rowB)
		d.Rows = append(d.Rows, rowD)
	}
	return []Table{a, b, c, d}
}

// Figure14 compares the EV scheduling policies (FCFS, JiT, Timeline) on
// normalized end-to-end latency, temporary incongruence and parallelism as
// the injected concurrency ρ grows.
func Figure14(o Options) []Table {
	o = o.normalized(10)
	rhos := []int{2, 4, 8}
	if o.Quick {
		rhos = []int{4}
	}

	lat := Table{ID: "fig14a", Title: "Normalized E2E latency vs concurrency (EV schedulers)",
		Columns: []string{"rho", "FCFS", "JiT", "TL"},
		Notes:   "TL < JiT < FCFS; the paper reports TL 2.36x/1.33x faster than FCFS/JiT at rho=4"}
	inc := Table{ID: "fig14b", Title: "Temporary incongruence vs concurrency (EV schedulers)",
		Columns: []string{"rho", "FCFS", "JiT", "TL"}}
	par := Table{ID: "fig14c", Title: "Parallelism level vs concurrency (EV schedulers)",
		Columns: []string{"rho", "FCFS", "JiT", "TL"}}

	for _, rho := range rhos {
		p := workload.DefaultMicroParams()
		p.Concurrency = rho
		p.Routines = 60
		rowL := []string{fmt.Sprintf("%d", rho)}
		rowI := []string{fmt.Sprintf("%d", rho)}
		rowP := []string{fmt.Sprintf("%d", rho)}
		for _, cfg := range harness.SchedulerConfigs() {
			agg := harness.RunTrials(microGen(p, o), cfg.Options, o.Trials, o.Seed)
			rowL = append(rowL, fmtF(agg.NormalizedLatency.Mean))
			rowI = append(rowI, fmtPct(agg.TempIncongruence.Mean))
			rowP = append(rowP, fmtF(agg.Parallelism.Mean))
		}
		lat.Rows = append(lat.Rows, rowL)
		inc.Rows = append(inc.Rows, rowI)
		par.Rows = append(par.Rows, rowP)
	}
	return []Table{lat, inc, par}
}

// Figure15ab reproduces the lock-lease ablation under the Timeline scheduler:
// normalized latency and temporary incongruence with both leases on, only
// pre-leases, only post-leases, and none, swept over concurrency.
func Figure15ab(o Options) []Table {
	o = o.normalized(10)
	rhos := []int{2, 4, 8}
	if o.Quick {
		rhos = []int{4}
	}
	labels := []string{"Both-on", "Pre-off", "Post-off", "Both-off"}

	lat := Table{ID: "fig15a", Title: "Normalized E2E latency: lease ablation (EV/TL)",
		Columns: append([]string{"rho"}, labels...),
		Notes:   "disabling both leases costs 3x-5.5x latency in the paper; post-leases matter more than pre-leases"}
	inc := Table{ID: "fig15b", Title: "Temporary incongruence: lease ablation (EV/TL)",
		Columns: append([]string{"rho"}, labels...)}

	for _, rho := range rhos {
		p := workload.DefaultMicroParams()
		p.Concurrency = rho
		p.Routines = 60
		rowL := []string{fmt.Sprintf("%d", rho)}
		rowI := []string{fmt.Sprintf("%d", rho)}
		for _, cfg := range harness.LeaseConfigs() {
			agg := harness.RunTrials(microGen(p, o), cfg.Options, o.Trials, o.Seed)
			rowL = append(rowL, fmtF(agg.NormalizedLatency.Mean))
			rowI = append(rowI, fmtPct(agg.TempIncongruence.Mean))
		}
		lat.Rows = append(lat.Rows, rowL)
		inc.Rows = append(inc.Rows, rowI)
	}
	return []Table{lat, inc}
}

// Figure15c reproduces the stretch-factor CDF: how much the Timeline
// scheduler stretches a routine's execution (actual start→finish over ideal
// runtime) as routines get longer.
func Figure15c(o Options) []Table {
	o = o.normalized(10)
	sizes := []float64{2, 4, 8}
	if o.Quick {
		sizes = []float64{2, 4}
	}
	tab := Table{
		ID:    "fig15c",
		Title: "Routine stretch factor vs commands per routine (EV/TL)",
		Columns: []string{"commands/routine", "stretch p50", "stretch p90", "stretch p99",
			"% routines stretched > 1.05"},
		Notes: "paper: stretch first rises with routine size, then falls as the lock table saturates",
	}
	for _, c := range sizes {
		p := workload.DefaultMicroParams()
		p.CommandsPerRoutine = c
		p.Routines = 60
		agg := harness.RunTrials(microGen(p, o), visibility.DefaultOptions(visibility.EV), o.Trials, o.Seed)
		stretched := 0
		for _, v := range agg.StretchValues {
			if v > 1.05 {
				stretched++
			}
		}
		frac := 0.0
		if len(agg.StretchValues) > 0 {
			frac = float64(stretched) / float64(len(agg.StretchValues))
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", c),
			fmtF(agg.Stretch.P50), fmtF(agg.Stretch.P90), fmtF(agg.Stretch.P99),
			fmtPct(frac),
		})
	}
	return []Table{tab}
}

// Figure15d measures the Timeline scheduler's routine-insertion cost (the
// wall-clock time of Algorithm 1) against the number of commands in the new
// routine, with a lineage table pre-populated by 30 routines over 15 devices
// — the configuration the paper ran on a Raspberry Pi.
func Figure15d(o Options) []Table {
	o = o.normalized(50)
	sizes := []int{2, 4, 6, 8, 10}
	if o.Quick {
		sizes = []int{2, 10}
	}
	tab := Table{
		ID:      "fig15d",
		Title:   "Timeline scheduler insertion time vs routine size (15 devices, 30 pre-placed routines)",
		Columns: []string{"commands", "mean insert time", "max insert time"},
		Notes:   "the paper reports ~1 ms for a 10-command routine on a Raspberry Pi 3B+",
	}
	for _, size := range sizes {
		durs := make([]float64, 0, o.Trials)
		for trial := 0; trial < o.Trials; trial++ {
			ctrl, _ := prePopulatedEV(15, 30, o.Seed+int64(trial))
			r := syntheticRoutine("probe", size, 15, o.Seed+int64(trial))
			start := time.Now()
			ctrl.Submit(r)
			durs = append(durs, float64(time.Since(start))/float64(time.Microsecond))
		}
		sum := stats.Summarize(durs)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1fus", sum.Mean),
			fmt.Sprintf("%.1fus", sum.Max),
		})
	}
	return []Table{tab}
}

// prePopulatedEV builds an EV/TL controller with `routines` long routines
// already placed over `devices` devices, so insertion-time measurements see a
// realistically occupied lineage table.
func prePopulatedEV(devices, routines int, seed int64) (visibility.Controller, *sim.Sim) {
	reg := device.Plugs(devices)
	fleet := device.NewFleet(reg)
	s := sim.NewAtEpoch()
	env := visibility.NewSimEnv(s, fleet)
	ctrl := visibility.New(env, fleet.Snapshot(), visibility.DefaultOptions(visibility.EV))
	for i := 0; i < routines; i++ {
		ctrl.Submit(syntheticRoutine(fmt.Sprintf("bg-%d", i), 3, devices, seed+int64(i)))
	}
	return ctrl, s
}

// syntheticRoutine builds a routine with n commands over the plug fleet,
// including a long command so its lineage accesses occupy time.
func syntheticRoutine(name string, n, devices int, seed int64) *routine.Routine {
	rng := stats.NewRNG(seed)
	r := routine.New(name)
	for c := 0; c < n; c++ {
		dur := time.Duration(1+rng.Intn(5)) * time.Minute
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", rng.Intn(devices))),
			Target:   device.On,
			Duration: dur,
		})
	}
	return r
}

// Figure16 reproduces the routine-size and device-popularity sweeps: latency,
// parallelism, temporary incongruence and order mismatch as the average
// commands per routine grows, and latency as the Zipf skew α grows.
func Figure16(o Options) []Table {
	o = o.normalized(8)
	sizes := []float64{1, 2, 4, 6, 8}
	alphas := []float64{0.05, 0.5, 1.0, 2.0}
	if o.Quick {
		sizes = []float64{2, 4}
		alphas = []float64{0.05, 1.0}
	}
	models := harness.StandardConfigs()

	lat := Table{ID: "fig16a", Title: "E2E latency (p50) vs commands per routine",
		Columns: []string{"commands", "WV", "GSV", "PSV", "EV"},
		Notes:   "PSV approaches GSV as routines grow; EV stays closer to WV"}
	par := Table{ID: "fig16b", Title: "Parallelism level vs commands per routine",
		Columns: []string{"commands", "WV", "GSV", "PSV", "EV"}}
	inc := Table{ID: "fig16c", Title: "EV temporary incongruence and order mismatch vs commands per routine",
		Columns: []string{"commands", "temp incongruence", "order mismatch"},
		Notes:   "PSV and GSV are always zero and omitted"}
	pop := Table{ID: "fig16d", Title: "E2E latency (p50) vs device popularity skew (alpha)",
		Columns: []string{"alpha", "WV", "GSV", "PSV", "EV"}}

	for _, c := range sizes {
		p := workload.DefaultMicroParams()
		p.CommandsPerRoutine = c
		p.Routines = 60
		rowL := []string{fmt.Sprintf("%.0f", c)}
		rowP := []string{fmt.Sprintf("%.0f", c)}
		for _, cfg := range models {
			agg := harness.RunTrials(microGen(p, o), cfg.Options, o.Trials, o.Seed)
			rowL = append(rowL, fmtMS(agg.LatencyMS.P50))
			rowP = append(rowP, fmtF(agg.Parallelism.Mean))
			if cfg.Options.Model == visibility.EV {
				inc.Rows = append(inc.Rows, []string{
					fmt.Sprintf("%.0f", c),
					fmtPct(agg.TempIncongruence.Mean),
					fmtPct(agg.OrderMismatch.Mean),
				})
			}
		}
		lat.Rows = append(lat.Rows, rowL)
		par.Rows = append(par.Rows, rowP)
	}

	for _, alpha := range alphas {
		p := workload.DefaultMicroParams()
		p.Alpha = alpha
		p.Routines = 60
		row := []string{fmt.Sprintf("%.2f", alpha)}
		for _, cfg := range models {
			agg := harness.RunTrials(microGen(p, o), cfg.Options, o.Trials, o.Seed)
			row = append(row, fmtMS(agg.LatencyMS.P50))
		}
		pop.Rows = append(pop.Rows, row)
	}
	return []Table{lat, par, inc, pop}
}

// Figure17 reproduces the long-running-routine sweeps: temporary incongruence
// and order mismatch as the long-command duration |L| and the long-routine
// fraction L% grow (EV under the Timeline scheduler).
func Figure17(o Options) []Table {
	o = o.normalized(8)
	durations := []time.Duration{5 * time.Minute, 10 * time.Minute, 20 * time.Minute, 40 * time.Minute}
	fractions := []float64{5, 10, 25, 50}
	if o.Quick {
		durations = durations[:2]
		fractions = fractions[:2]
	}

	a := Table{ID: "fig17a", Title: "EV: impact of long-command duration |L| (L%=10)",
		Columns: []string{"|L|", "temp incongruence", "order mismatch"},
		Notes:   "paper: longer runs spread routines out (less incongruence) while order mismatch rises"}
	b := Table{ID: "fig17b", Title: "EV: impact of long-routine percentage L% (|L|=20m)",
		Columns: []string{"L%", "temp incongruence", "order mismatch"},
		Notes:   "paper: more long routines raise incongruence; order mismatch falls as post-leases dominate"}

	for _, d := range durations {
		p := workload.DefaultMicroParams()
		p.LongMean = d
		p.Routines = 60
		agg := harness.RunTrials(microGen(p, o), visibility.DefaultOptions(visibility.EV), o.Trials, o.Seed)
		a.Rows = append(a.Rows, []string{fmtDur(d), fmtPct(agg.TempIncongruence.Mean), fmtPct(agg.OrderMismatch.Mean)})
	}
	for _, f := range fractions {
		p := workload.DefaultMicroParams()
		p.LongPct = f
		p.Routines = 60
		agg := harness.RunTrials(microGen(p, o), visibility.DefaultOptions(visibility.EV), o.Trials, o.Seed)
		b.Rows = append(b.Rows, []string{fmt.Sprintf("%.0f", f), fmtPct(agg.TempIncongruence.Mean), fmtPct(agg.OrderMismatch.Mean)})
	}
	return []Table{a, b}
}

// Table3 renders the microbenchmark parameter defaults, as a self-check that
// the generator defaults match the paper.
func Table3(Options) []Table {
	p := workload.DefaultMicroParams()
	tab := Table{
		ID:      "table3",
		Title:   "Parameterized microbenchmark defaults",
		Columns: []string{"name", "default", "description"},
	}
	tab.Rows = [][]string{
		{"R", fmt.Sprintf("%d", p.Routines), "total number of routines"},
		{"rho", fmt.Sprintf("%d", p.Concurrency), "number of concurrent routines injected"},
		{"C", fmt.Sprintf("%.0f", p.CommandsPerRoutine), "average commands per routine (ND)"},
		{"alpha", fmt.Sprintf("%.2f", p.Alpha), "Zipfian coefficient of device popularity"},
		{"L%", fmt.Sprintf("%.0f%%", p.LongPct), "percentage of long running routines"},
		{"|L|", fmtDur(p.LongMean), "average duration of a long running command (ND)"},
		{"|S|", fmtDur(p.ShortMean), "average duration of a short running command (ND)"},
		{"M", fmt.Sprintf("%.0f%%", p.MustPct), "percentage of Must commands per routine"},
		{"F", fmt.Sprintf("%.0f%%", p.FailedPct), "percentage of failed devices"},
		{"devices", fmt.Sprintf("%d", p.Devices), "size of the device fleet"},
	}
	return []Table{tab}
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick returns options that keep every experiment fast enough for unit tests.
func quick() Options { return Options{Trials: 2, Quick: true, Seed: 1} }

func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow-ish; skipped with -short")
	}
	for _, exp := range All() {
		t.Run(exp.ID, func(t *testing.T) {
			tables := exp.Run(quick())
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Errorf("%s: table missing ID or title: %+v", exp.ID, tab)
				}
				if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Errorf("%s: table %s has no columns or rows", exp.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: table %s row %v has %d cells, want %d",
							exp.ID, tab.ID, row, len(row), len(tab.Columns))
					}
				}
				text := tab.String()
				if !strings.Contains(text, tab.ID) || !strings.Contains(text, tab.Columns[0]) {
					t.Errorf("%s: rendered table missing ID or header:\n%s", exp.ID, text)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	exp, ok := ByID("FIG12A")
	if !ok || exp.ID != "fig12a" {
		t.Fatalf("ByID(FIG12A) = %+v, %v", exp, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) should not resolve")
	}
	if len(IDs()) != len(All()) {
		t.Fatalf("IDs() length %d != All() length %d", len(IDs()), len(All()))
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	// With enough trials, WV incongruence at offset 0 should be non-zero for
	// the largest device count, and EV-style congruence is covered elsewhere.
	tables := Figure1(Options{Trials: 30, Seed: 1})
	tab := tables[0]
	last := tab.Rows[len(tab.Rows)-1]
	pct := parsePct(t, last[1]) // offset=0 column for the largest device count
	if pct <= 0 {
		t.Errorf("Fig 1: expected non-zero incongruence for %s devices at offset 0, got %v%%", last[0], pct)
	}
}

func TestFigure2ShapeMatchesPaper(t *testing.T) {
	tables := Figure2(Options{Trials: 1, Seed: 1})
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("Fig 2 should have GSV/PSV/EV rows, got %v", rows)
	}
	makespan := map[string]float64{}
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad makespan cell %q: %v", row[1], err)
		}
		makespan[row[0]] = v
	}
	if !(makespan["EV"] < makespan["PSV"] && makespan["PSV"] < makespan["GSV"]) {
		t.Errorf("Fig 2 ordering should be EV < PSV < GSV, got %v", makespan)
	}
	// The paper reports 8 / 5 / 3 time units; allow generous slack for the
	// emulation's 100ms short commands.
	if makespan["GSV"] < 7 || makespan["GSV"] > 9 {
		t.Errorf("GSV makespan = %v units, want ~8", makespan["GSV"])
	}
	if makespan["EV"] > 4.5 {
		t.Errorf("EV makespan = %v units, want ~3", makespan["EV"])
	}
}

func TestFigure3MatrixMatchesPaper(t *testing.T) {
	tab := Figure3(Options{})[0]
	verdict := map[string][]string{}
	for _, row := range tab.Rows {
		verdict[row[0]] = row[1:]
	}
	// Columns are GSV, S-GSV, PSV, EV.
	check := func(name string, want []string) {
		t.Helper()
		got := verdict[name]
		if len(got) != len(want) {
			t.Fatalf("case %q missing: %v", name, verdict)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("case %q column %d = %q, want %q", name, i, got[i], want[i])
			}
		}
	}
	check("F,Re before routine", []string{"ok", "ok", "ok", "ok"})
	check("F before first cmd (no Re)", []string{"abort", "abort", "abort", "abort"})
	check("F during window cmd", []string{"abort", "abort", "abort", "abort"})
	check("F after window, down at finish", []string{"abort", "abort", "abort", "ok"})
	check("F after window, Re before finish", []string{"abort", "abort", "ok", "ok"})
	check("F of untouched device", []string{"ok", "abort", "ok", "ok"})
}

func TestTable3MatchesPaperDefaults(t *testing.T) {
	tab := Table3(Options{})[0]
	want := map[string]string{
		"R": "100", "rho": "4", "C": "3", "alpha": "0.05",
		"L%": "10%", "|L|": "20.0m", "|S|": "10.0s", "M": "100%", "F": "0%",
	}
	got := map[string]string{}
	for _, row := range tab.Rows {
		got[row[0]] = row[1]
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Table 3 %s = %q, want %q", k, got[k], v)
		}
	}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", cell, err)
	}
	return v
}

// Package experiments regenerates every figure and table of the paper's
// evaluation (§7). Each experiment runs workload-driven simulations through
// the harness and renders its results as plain-text tables whose rows/series
// correspond to the paper's plots.
//
// Absolute numbers differ from the paper (the substrate is a discrete-event
// emulation, not the authors' testbed and traces), but the shapes — which
// model wins, by roughly what factor, and where crossovers happen — are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Options scales an experiment run. The zero value picks per-experiment
// defaults sized for interactive use; the paper's full trial counts can be
// requested by raising Trials.
type Options struct {
	// Trials is the number of randomized trials per data point (0 = default).
	Trials int
	// Seed is the base random seed (0 = 1).
	Seed int64
	// Quick shrinks workload sizes further, for use in unit tests and smoke
	// benchmarks.
	Quick bool
}

func (o Options) normalized(defaultTrials int) Options {
	if o.Trials <= 0 {
		o.Trials = defaultTrials
	}
	if o.Quick && o.Trials > 3 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is one rendered result table (one figure panel or paper table).
type Table struct {
	// ID identifies the paper artifact, e.g. "fig12a-morning" or "fig13b".
	ID string
	// Title describes what the table shows.
	Title string
	// Columns are the column headers; Rows are pre-formatted cells.
	Columns []string
	Rows    [][]string
	// Notes carries caveats or the qualitative takeaway.
	Notes string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment couples a paper artifact with the function that regenerates it.
type Experiment struct {
	// ID is the short name used by `safehome-bench -experiment <id>`.
	ID string
	// Paper names the figure/table in the paper.
	Paper string
	// Description summarizes the experiment.
	Description string
	// Run regenerates the artifact's tables.
	Run func(Options) []Table
}

// All lists every reproducible figure and table, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Paper: "Figure 1", Description: "Concurrency causes incongruent end-states under Weak Visibility", Run: Figure1},
		{ID: "fig2", Paper: "Figure 2 / Table 1", Description: "Five-routine example under GSV, PSV and EV", Run: Figure2},
		{ID: "fig3", Paper: "Figure 3 / Table 2", Description: "Failure serialization cases across visibility models", Run: Figure3},
		{ID: "fig12a", Paper: "Figure 12a", Description: "Morning/Party/Factory scenarios: latency, temporary incongruence, parallelism", Run: Figure12a},
		{ID: "fig12b", Paper: "Figure 12b", Description: "Final incongruence across 100 runs of 9 routines", Run: Figure12b},
		{ID: "fig13", Paper: "Figure 13", Description: "Effect of failures: abort rate and rollback overhead vs Must% and Failed%", Run: Figure13},
		{ID: "fig14", Paper: "Figure 14", Description: "Scheduling policies: FCFS vs JiT vs Timeline", Run: Figure14},
		{ID: "fig15ab", Paper: "Figure 15a-b", Description: "Lock-lease ablation under the Timeline scheduler", Run: Figure15ab},
		{ID: "fig15c", Paper: "Figure 15c", Description: "CDF of routine stretch factor vs commands per routine", Run: Figure15c},
		{ID: "fig15d", Paper: "Figure 15d", Description: "Timeline scheduler insertion time vs routine size", Run: Figure15d},
		{ID: "fig16", Paper: "Figure 16", Description: "Impact of routine size and device popularity", Run: Figure16},
		{ID: "fig17", Paper: "Figure 17", Description: "Impact of long-running routine duration and fraction", Run: Figure17},
		{ID: "table3", Paper: "Table 3", Description: "Microbenchmark parameter defaults", Run: Table3},
		{ID: "mt-scale", Paper: "(beyond the paper)", Description: "Multi-tenant HomeManager throughput vs worker-shard count", Run: MultiTenant},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns every experiment ID, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// --- formatting helpers -------------------------------------------------------

func fmtMS(ms float64) string {
	if ms >= 60_000 {
		return fmt.Sprintf("%.1fm", ms/60_000)
	}
	if ms >= 1000 {
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	return fmt.Sprintf("%.0fms", ms)
}

func fmtPct(frac float64) string { return fmt.Sprintf("%.1f%%", 100*frac) }

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

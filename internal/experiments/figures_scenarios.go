// Implementations of the motivation and trace-scenario artifacts: Figures 1,
// 2, 3, 12a and 12b.
package experiments

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/harness"
	"safehome/internal/routine"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// Figure1 reproduces Fig 1: fraction of incongruent end states under Weak
// Visibility when two conflicting routines (all-ON / all-OFF) race over a
// varying number of devices, for several start offsets of the second routine.
func Figure1(o Options) []Table {
	o = o.normalized(50)
	deviceCounts := []int{2, 4, 6, 8, 10}
	offsets := []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if o.Quick {
		deviceCounts = []int{2, 6}
		offsets = offsets[:2]
	}
	const jitter = 80 * time.Millisecond

	tab := Table{
		ID:      "fig1",
		Title:   "WV: fraction of non-serializable end states (two conflicting routines)",
		Columns: []string{"devices"},
		Notes:   "rises with device count, falls with start offset; EV/GSV/PSV are always 0",
	}
	for _, off := range offsets {
		tab.Columns = append(tab.Columns, fmt.Sprintf("offset=%s", fmtDur(off)))
	}
	for _, n := range deviceCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, off := range offsets {
			gen := func(seed int64) workload.Spec { return workload.Figure1(n, off, jitter) }
			agg := harness.RunTrials(gen, visibility.DefaultOptions(visibility.WV), o.Trials, o.Seed)
			row = append(row, fmtPct(agg.FinalIncongruence))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}
}

// Figure2 reproduces the worked example of Fig 2 / Table 1: five concurrent
// routines under GSV, PSV and EV. The paper reports total execution times of
// 8, 5 and 3 time units respectively (one unit = one long command).
func Figure2(o Options) []Table {
	o = o.normalized(1)
	spec := workload.Figure2()
	unit := time.Minute

	tab := Table{
		ID:      "fig2",
		Title:   "Five-routine example: execution time and latency by visibility model",
		Columns: []string{"model", "makespan (units)", "mean latency (units)", "p95 latency (units)", "temp incongruence"},
		Notes:   "paper: GSV=8, PSV=5, EV=3 time units",
	}
	configs := []harness.Config{
		{Label: "GSV", Options: visibility.DefaultOptions(visibility.GSV)},
		{Label: "PSV", Options: visibility.DefaultOptions(visibility.PSV)},
		{Label: "EV", Options: visibility.DefaultOptions(visibility.EV)},
	}
	for _, cfg := range configs {
		res := harness.Run(spec, cfg.Options, o.Seed)
		agg := harness.RunTrials(harness.Fixed(spec), cfg.Options, o.Trials, o.Seed)
		tab.Rows = append(tab.Rows, []string{
			cfg.Label,
			fmtF(float64(res.Elapsed) / float64(unit)),
			fmtF(agg.LatencyMS.Mean / float64(unit.Milliseconds())),
			fmtF(agg.LatencyMS.P95 / float64(unit.Milliseconds())),
			fmtPct(agg.TempIncongruence.Mean),
		})
	}
	return []Table{tab}
}

// Figure3 reproduces the failure-serialization matrix of Fig 3: six
// failure/restart timings of the cooling routine's window device (plus an
// unrelated-device case) and whether each visibility model executes or aborts
// the routine.
func Figure3(o Options) []Table {
	o = o.normalized(1)
	type fcase struct {
		name      string
		dev       device.ID
		failAt    time.Duration
		restartAt time.Duration
		submitAt  time.Duration
	}
	cases := []fcase{
		{"F,Re before routine", "window", 10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond},
		{"F before first cmd (no Re)", "window", 10 * time.Millisecond, 0, 100 * time.Millisecond},
		{"F during window cmd", "window", 50 * time.Millisecond, 0, 0},
		{"F after window, down at finish", "window", 150 * time.Millisecond, 0, 0},
		{"F after window, Re before finish", "window", 110 * time.Millisecond, 150 * time.Millisecond, 0},
		{"F of untouched device", "light", 50 * time.Millisecond, 0, 0},
	}
	models := []visibility.Model{visibility.GSV, visibility.SGSV, visibility.PSV, visibility.EV}

	tab := Table{
		ID:      "fig3",
		Title:   "Failure serialization: execute (ok) or abort per visibility model",
		Columns: []string{"failure timing", "GSV", "S-GSV", "PSV", "EV"},
		Notes:   "EV aborts only when the failure cannot be serialized before or after the routine",
	}
	for _, tc := range cases {
		row := []string{tc.name}
		for _, m := range models {
			spec := workload.Spec{
				Name: "fig3",
				Devices: []device.Info{
					{ID: "window", Kind: device.KindWindow, Initial: device.Open},
					{ID: "ac", Kind: device.KindAC, Initial: device.Off},
					{ID: "light", Kind: device.KindLight, Initial: device.Off},
				},
				Submissions: []workload.Submission{{At: tc.submitAt, Routine: routine.New("cooling",
					routine.Command{Device: "window", Target: device.Closed},
					routine.Command{Device: "ac", Target: device.On})}},
				Failures: []workload.FailureEvent{{At: tc.failAt, Device: tc.dev}},
			}
			if tc.restartAt > 0 {
				spec.Failures = append(spec.Failures, workload.FailureEvent{At: tc.restartAt, Device: tc.dev, Restart: true})
			}
			res := harness.Run(spec, visibility.DefaultOptions(m), o.Seed)
			cell := "ok"
			if res.Report.Aborted > 0 {
				cell = "abort"
			}
			row = append(row, cell)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}
}

// Figure12a reproduces the trace-based scenario comparison: for each of the
// Morning, Party and Factory scenarios, end-to-end latency percentiles,
// temporary incongruence and parallelism level under WV, GSV, PSV and EV.
func Figure12a(o Options) []Table {
	o = o.normalized(10)
	scenarios := []struct {
		name string
		gen  harness.Generator
	}{
		{"morning", func(seed int64) workload.Spec { return workload.Morning(seed) }},
		{"party", func(seed int64) workload.Spec { return workload.Party(seed) }},
		{"factory", func(seed int64) workload.Spec {
			p := workload.DefaultFactoryParams()
			if o.Quick {
				p.Stages = 10
			}
			p.Seed = seed
			return workload.Factory(p)
		}},
	}

	var tables []Table
	for _, sc := range scenarios {
		tab := Table{
			ID:    "fig12a-" + sc.name,
			Title: fmt.Sprintf("%s scenario: latency / temporary incongruence / parallelism", sc.name),
			Columns: []string{"model", "latency p50", "latency p90", "latency p95",
				"temp incongruence", "parallelism (mean)"},
			Notes: "EV tracks WV's latency while guaranteeing a serializable end state",
		}
		for _, agg := range harness.Compare(sc.gen, harness.StandardConfigs(), o.Trials, o.Seed) {
			tab.Rows = append(tab.Rows, []string{
				agg.Label(),
				fmtMS(agg.LatencyMS.P50),
				fmtMS(agg.LatencyMS.P90),
				fmtMS(agg.LatencyMS.P95),
				fmtPct(agg.TempIncongruence.Mean),
				fmtF(agg.Parallelism.Mean),
			})
		}
		tables = append(tables, tab)
	}
	return tables
}

// Figure12b reproduces the final-incongruence experiment: many runs of 9
// concurrent routines with realistic latency jitter; the fraction of runs
// whose end state is not equivalent to any serial order of the routines.
func Figure12b(o Options) []Table {
	o = o.normalized(100)
	gen := func(seed int64) workload.Spec {
		p := workload.DefaultMicroParams()
		p.Routines = 9
		p.Concurrency = 9
		p.Devices = 10
		p.LongPct = 0
		p.ShortMean = 500 * time.Millisecond
		p.Alpha = 0.9 // concentrate accesses so the routines actually conflict
		p.Seed = seed
		spec := workload.Micro(p)
		spec.JitterMax = 400 * time.Millisecond
		return spec
	}
	tab := Table{
		ID:      "fig12b",
		Title:   fmt.Sprintf("Final incongruence over %d runs of 9 concurrent routines", o.Trials),
		Columns: []string{"model", "final incongruence", "committed", "aborted"},
		Notes:   "WV ends incongruent in a sizeable fraction of runs; all SafeHome models end serializable",
	}
	for _, agg := range harness.Compare(gen, harness.StandardConfigs(), o.Trials, o.Seed) {
		tab.Rows = append(tab.Rows, []string{
			agg.Label(),
			fmtPct(agg.FinalIncongruence),
			fmt.Sprintf("%d", agg.Committed),
			fmt.Sprintf("%d", agg.Aborted),
		})
	}
	return []Table{tab}
}

// Multi-tenant scale-out scenario: not a paper artifact but the ROADMAP's
// production-scale direction — one hub process serving many independent
// homes through the sharded HomeManager (internal/manager).
package experiments

import (
	"fmt"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/manager"
	"safehome/internal/routine"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// MultiTenant drives a fixed fleet of homes (each running EV with its own
// controller and device fleet) through the sharded HomeManager at increasing
// shard counts, and reports wall-clock throughput (routines/sec) and the
// speedup over one shard. Routine content is seeded and identical across
// shard counts; only the wall-clock timings vary with the hardware.
func MultiTenant(o Options) []Table {
	o = o.normalized(1)
	homes, perHome, plugs := 48, 24, 8
	submitters := 16
	shardCounts := []int{1, 2, 4, 8}
	if o.Quick {
		homes, perHome, plugs = 12, 6, 4
		submitters = 4
		shardCounts = []int{1, 4}
	}

	// Pre-generate every home's routines once so each shard count replays the
	// identical workload.
	rng := stats.NewRNG(o.Seed)
	work := make([][]*routine.Routine, homes)
	for h := range work {
		work[h] = make([]*routine.Routine, perHome)
		for i := range work[h] {
			r := routine.New(fmt.Sprintf("mt-%d-%d", h, i))
			nCmds := 2 + rng.Intn(3)
			for c := 0; c < nCmds; c++ {
				target := device.On
				if rng.Bool(0.5) {
					target = device.Off
				}
				r.Commands = append(r.Commands, routine.Command{
					Device:   device.ID(fmt.Sprintf("plug-%d", rng.Intn(plugs))),
					Target:   target,
					Duration: time.Duration(1+rng.Intn(10)) * time.Minute,
				})
			}
			work[h][i] = r
		}
	}

	type point struct {
		shards    int
		wall      time.Duration
		perSec    float64
		committed int64
	}
	var points []point
	for _, shards := range shardCounts {
		m := manager.New(manager.Config{
			Shards: shards,
			Home:   manager.HomeConfig{Model: visibility.EV},
		})
		if _, err := m.AddHomes("home", homes, plugs); err != nil {
			panic(fmt.Sprintf("experiments: multi-tenant setup: %v", err))
		}

		// Fan the per-home workload out over a fixed pool of submitters, as
		// concurrent API clients would.
		jobs := make(chan int, homes)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for h := range jobs {
					id := manager.HomeID(fmt.Sprintf("home-%d", h))
					for _, r := range work[h] {
						if _, err := m.Submit(id, r); err != nil {
							panic(fmt.Sprintf("experiments: multi-tenant submit: %v", err))
						}
					}
				}
			}()
		}
		for h := 0; h < homes; h++ {
			jobs <- h
		}
		close(jobs)
		wg.Wait()
		m.Close()
		wall := time.Since(start)

		st := m.Status()
		total := homes * perHome
		if st.Committed != int64(total) {
			panic(fmt.Sprintf("experiments: multi-tenant: %d committed, want %d", st.Committed, total))
		}
		points = append(points, point{
			shards:    shards,
			wall:      wall,
			perSec:    float64(total) / wall.Seconds(),
			committed: st.Committed,
		})
	}

	tab := Table{
		ID:      "mt-scale",
		Title:   fmt.Sprintf("Manager throughput: %d homes x %d routines, EV/TL, %d submitters", homes, perHome, submitters),
		Columns: []string{"shards", "homes", "routines", "wall", "routines/s", "speedup"},
		Notes:   "wall-clock timings are hardware-dependent; the reproduction target is the upward throughput trend with shard count",
	}
	base := points[0].perSec
	for _, p := range points {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", p.shards),
			fmt.Sprintf("%d", homes),
			fmt.Sprintf("%d", p.committed),
			fmtDur(p.wall),
			fmt.Sprintf("%.0f", p.perSec),
			fmt.Sprintf("%.2fx", p.perSec/base),
		})
	}
	return []Table{tab}
}

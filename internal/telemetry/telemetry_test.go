package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("safehome_test_ops_total", "Ops processed.", L("kind", "submit"))
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters stay monotone
	g := r.Gauge("safehome_test_depth", "Queue depth.")
	g.Set(7)
	g.Dec()
	r.CounterFunc("safehome_test_fn_total", "Func counter.", func() int64 { return 42 })
	r.GaugeFunc("safehome_test_fn_gauge", "Func gauge.", func() float64 { return 1.5 })

	text := string(r.Render())
	for _, want := range []string{
		"# HELP safehome_test_ops_total Ops processed.",
		"# TYPE safehome_test_ops_total counter",
		`safehome_test_ops_total{kind="submit"} 4`,
		"safehome_test_depth 6",
		"safehome_test_fn_total 42",
		"safehome_test_fn_gauge 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q in:\n%s", want, text)
		}
	}
	if problems := Lint(text); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestCounterRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("safehome_test_total", "x.")
	b := r.Counter("safehome_test_total", "x.")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
}

func TestFamilyTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("safehome_x_total", "x.")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("safehome_x_total", "x.")
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("safehome_test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.5605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.5605", got)
	}
	text := string(r.Render())
	for _, want := range []string{
		`safehome_test_latency_seconds_bucket{le="0.001"} 1`,
		`safehome_test_latency_seconds_bucket{le="0.01"} 3`,
		`safehome_test_latency_seconds_bucket{le="0.1"} 4`,
		`safehome_test_latency_seconds_bucket{le="1"} 5`,
		`safehome_test_latency_seconds_bucket{le="+Inf"} 6`,
		`safehome_test_latency_seconds_count 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q in:\n%s", want, text)
		}
	}
	if problems := Lint(text); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
	fams, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	f := fams["safehome_test_latency_seconds"]
	if f == nil || f.Type != TypeHistogram {
		t.Fatalf("histogram family not parsed: %+v", f)
	}
	q50, ok := HistogramQuantile(f, 0.5)
	if !ok || q50 <= 0.001 || q50 > 0.01+1e-12 {
		t.Errorf("p50 = %v, want in (0.001, 0.01]", q50)
	}
	// p99.9 lands in the +Inf bucket; the estimate clamps to the last finite
	// bound.
	q999, ok := HistogramQuantile(f, 0.999)
	if !ok || q999 != 1 {
		t.Errorf("p999 = %v, want clamp to 1", q999)
	}
}

func TestHistogramConcurrentObserveStaysConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("safehome_test_conc_seconds", "Concurrent.", DefBuckets())
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	// Scrape concurrently with the writers: every render must lint clean
	// (cumulative monotone, +Inf == _count) even mid-write.
	for i := 0; i < 50; i++ {
		if problems := Lint(string(r.Render())); len(problems) != 0 {
			t.Fatalf("lint problems under concurrent writes: %v", problems)
		}
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
}

func TestObserveAndIncAreAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("safehome_test_alloc_seconds", "Alloc.", DefBuckets())
	c := r.Counter("safehome_test_alloc_total", "Alloc.")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(e *Emitter) {
		e.Family("safehome_test_breaker_opens_total", TypeCounter, "Breaker opens.")
		e.Value(2, "device", "plug-0")
		e.Value(1, "device", "plug-1")
	})
	text := string(r.Render())
	if !strings.Contains(text, `safehome_test_breaker_opens_total{device="plug-0"} 2`) {
		t.Fatalf("collector sample missing:\n%s", text)
	}
	if problems := Lint(text); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestLintCatchesBadExposition(t *testing.T) {
	cases := map[string]string{
		"missing TYPE":           "# HELP safehome_x_total x.\nsafehome_x_total 1\n",
		"missing HELP":           "# TYPE safehome_x_total counter\nsafehome_x_total 1\n",
		"counter without _total": "# HELP safehome_x x.\n# TYPE safehome_x counter\nsafehome_x 1\n",
		"duplicate series":       "# HELP safehome_x_total x.\n# TYPE safehome_x_total counter\nsafehome_x_total 1\nsafehome_x_total 2\n",
		"reserved label":         "# HELP safehome_x_total x.\n# TYPE safehome_x_total counter\nsafehome_x_total{__n=\"v\"} 1\n",
		"inf != count":           "# HELP safehome_h h.\n# TYPE safehome_h histogram\nsafehome_h_bucket{le=\"+Inf\"} 3\nsafehome_h_sum 1\nsafehome_h_count 4\n",
		"non-monotone buckets":   "# HELP safehome_h h.\n# TYPE safehome_h histogram\nsafehome_h_bucket{le=\"1\"} 5\nsafehome_h_bucket{le=\"2\"} 3\nsafehome_h_bucket{le=\"+Inf\"} 5\nsafehome_h_sum 1\nsafehome_h_count 5\n",
	}
	for name, text := range cases {
		if problems := Lint(text); len(problems) == 0 {
			t.Errorf("%s: lint passed bad exposition:\n%s", name, text)
		}
	}
}

func TestParseEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Gauge("safehome_test_esc", "Esc.", L("path", `C:\dir "x"`))
	text := string(r.Render())
	fams, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	s := fams["safehome_test_esc"].Samples[0]
	if s.Labels["path"] != `C:\dir "x"` {
		t.Fatalf("round-trip mangled label: %q", s.Labels["path"])
	}
}

func TestCounterTotals(t *testing.T) {
	text := "# HELP safehome_x_total x.\n# TYPE safehome_x_total counter\n" +
		"safehome_x_total{a=\"1\"} 2\nsafehome_x_total{a=\"2\"} 3\n"
	fams, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := CounterTotals(fams)["safehome_x_total"]; got != 5 {
		t.Fatalf("total = %v, want 5", got)
	}
}

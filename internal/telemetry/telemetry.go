// Package telemetry is a dependency-free metrics registry that renders the
// Prometheus text exposition format (version 0.0.4). It exists so the hub and
// manager can serve `GET /metrics` without pulling the Prometheus client
// library into a repo that is deliberately stdlib-only.
//
// The design follows the repo's off-loop read discipline (the PR 4 snapshot
// pattern): instruments are written with single atomic operations — no locks,
// no allocation — so the home loop goroutines can record stage latencies
// in-line, and scrapes read the same atomics without ever touching a mailbox
// or blocking a writer. A Histogram keeps non-cumulative per-bucket cells;
// the render pass computes the cumulative counts Prometheus expects, which
// makes `le="+Inf"` equal `_count` by construction even while writers are
// mid-flight.
//
// Registration is get-or-create and keyed by (family, label set): asking for
// the same instrument twice returns the same cells, so a restarted home
// generation keeps appending to the counters of its predecessor.
package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument kinds, as they appear on `# TYPE` lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one name="value" pair. Labels are rendered once at registration,
// so holding an instrument and bumping it is allocation-free.
type Label struct{ Name, Value string }

// L is shorthand for Label{name, value}.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing int64. By convention (enforced by
// Lint) counter family names end in `_total`.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored so the counter stays monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Observe is lock-free and
// allocation-free: one atomic add on the bucket cell plus a CAS loop on the
// float64 sum, so many loop goroutines can share one histogram (the fleet-wide
// stage histograms are written by every home on the manager).
type Histogram struct {
	upper []float64 // ascending upper bounds; +Inf is implicit
	cells []atomic.Uint64
	sum   atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.cells[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.cells {
		n += h.cells[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExponentialBuckets returns n upper bounds starting at start and multiplying
// by factor: the fixed exponential ladder the repo's latency histograms use.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefBuckets covers 10µs to ~21s at 2x resolution — wide enough for both
// virtual-clock stage latencies and wall-clock wake/HTTP latencies.
func DefBuckets() []float64 { return ExponentialBuckets(10e-6, 2, 22) }

// child is one labeled instrument inside a family.
type child struct {
	labels  string // pre-rendered `a="b",c="d"` (no braces), "" for unlabeled
	ctr     *Counter
	gauge   *Gauge
	hist    *Histogram
	ctrFn   func() int64
	gaugeFn func() float64
}

// family is a named group of children sharing HELP/TYPE.
type family struct {
	name, help, typ string
	order           []string // label keys in registration order
	children        map[string]*child
}

// Registry holds families in registration order and renders them as
// Prometheus text. All methods are safe for concurrent use; instrument
// registration takes the registry lock, but the returned instruments are
// lock-free to bump.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func(*Emitter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) getFamily(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: map[string]*child{}}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: family %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) getChild(labels []Label) *child {
	key := renderLabels(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter registers (or finds) a counter. Counter names should end in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.getFamily(name, help, TypeCounter).getChild(labels)
	if c.ctr == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.getFamily(name, help, TypeGauge).getChild(labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// — the bridge to counters that already exist elsewhere (sharded manager
// totals, journal stats atomics).
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.getFamily(name, help, TypeCounter).getChild(labels).ctrFn = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.getFamily(name, help, TypeGauge).getChild(labels).gaugeFn = fn
}

// Histogram registers (or finds) a histogram with the given upper bounds
// (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets must ascend")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.getFamily(name, help, TypeHistogram).getChild(labels)
	if c.hist == nil {
		up := make([]float64, len(buckets))
		copy(up, buckets)
		c.hist = &Histogram{upper: up, cells: make([]atomic.Uint64, len(up)+1)}
	}
	return c.hist
}

// Collect registers a scrape-time callback for families whose label sets are
// dynamic (per-device breaker counters, per-state home gauges). The callback
// must emit families whose names are not registered statically.
func (r *Registry) Collect(fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Emitter writes one scrape's worth of collector samples.
type Emitter struct {
	buf     *bytes.Buffer
	curName string
}

// Family starts a metric family: writes its HELP/TYPE header. Subsequent
// Value calls emit samples for it.
func (e *Emitter) Family(name, typ, help string) {
	writeHeader(e.buf, name, help, typ)
	e.curName = name
}

// Value emits one sample for the current family. labelPairs alternate
// name, value.
func (e *Emitter) Value(v float64, labelPairs ...string) {
	if e.curName == "" {
		panic("telemetry: Emitter.Value before Family")
	}
	e.buf.WriteString(e.curName)
	if len(labelPairs) > 0 {
		e.buf.WriteByte('{')
		for i := 0; i+1 < len(labelPairs); i += 2 {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			e.buf.WriteString(labelPairs[i])
			e.buf.WriteString(`="`)
			e.buf.WriteString(escapeLabel(labelPairs[i+1]))
			e.buf.WriteByte('"')
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	writeFloat(e.buf, v)
	e.buf.WriteByte('\n')
}

// Render returns the full exposition text.
func (r *Registry) Render() []byte {
	var b bytes.Buffer
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	cols := make([]func(*Emitter), len(r.collectors))
	copy(cols, r.collectors)
	r.mu.Unlock()

	for _, f := range fams {
		writeHeader(&b, f.name, f.help, f.typ)
		for _, key := range f.order {
			c := f.children[key]
			switch {
			case c.hist != nil:
				renderHistogram(&b, f.name, c)
			case c.ctr != nil:
				writeSample(&b, f.name, "", c.labels, float64(c.ctr.Value()))
			case c.gauge != nil:
				writeSample(&b, f.name, "", c.labels, float64(c.gauge.Value()))
			case c.ctrFn != nil:
				writeSample(&b, f.name, "", c.labels, float64(c.ctrFn()))
			case c.gaugeFn != nil:
				writeSample(&b, f.name, "", c.labels, c.gaugeFn())
			}
		}
	}
	e := &Emitter{buf: &b}
	for _, fn := range cols {
		fn(e)
	}
	return b.Bytes()
}

// renderHistogram reads the cells once, then renders the cumulative buckets,
// sum and count from that single read — the exposition is internally
// consistent no matter how many writers are mid-Observe.
func renderHistogram(b *bytes.Buffer, name string, c *child) {
	counts := make([]uint64, len(c.hist.cells))
	for i := range c.hist.cells {
		counts[i] = c.hist.cells[i].Load()
	}
	var cum uint64
	for i, up := range c.hist.upper {
		cum += counts[i]
		writeBucket(b, name, c.labels, strconv.FormatFloat(up, 'g', -1, 64), cum)
	}
	cum += counts[len(counts)-1]
	writeBucket(b, name, c.labels, "+Inf", cum)
	writeSample(b, name, "_sum", c.labels, c.hist.Sum())
	writeSample(b, name, "_count", c.labels, float64(cum))
}

func writeHeader(b *bytes.Buffer, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

func writeBucket(b *bytes.Buffer, name, labels, le string, v uint64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

func writeSample(b *bytes.Buffer, name, suffix, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	writeFloat(b, v)
	b.WriteByte('\n')
}

func writeFloat(b *bytes.Buffer, v float64) {
	switch {
	case math.IsInf(v, 1):
		b.WriteString("+Inf")
	case math.IsInf(v, -1):
		b.WriteString("-Inf")
	case math.IsNaN(v):
		b.WriteString("NaN")
	default:
		b.Write(strconv.AppendFloat(b.AvailableBuffer(), v, 'g', -1, 64))
	}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as `text/plain; version=0.0.4`.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(r.Render())
	})
}

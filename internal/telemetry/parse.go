package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name, its label set, and a value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is a parsed metric family: the HELP/TYPE header plus every sample
// that belongs to it (for histograms that includes the _bucket/_sum/_count
// series).
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse decodes Prometheus text exposition format. It is the consumer-side
// counterpart of Registry.Render, used by safehome-loadgen's scrape diff and
// by the exposition-lint tests; it accepts the subset of the format the
// registry emits (plus untyped samples with no header).
func Parse(text string) (map[string]*Family, error) {
	fams := map[string]*Family{}
	get := func(name string) *Family {
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				f := get(fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				} else {
					f.Help = " " // present but empty
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE", ln+1)
				}
				f := get(fields[2])
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, fields[2])
				}
				f.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		f := get(familyOf(fams, s.Name))
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// familyOf maps a sample name onto its family: histogram series names carry
// _bucket/_sum/_count suffixes on top of the family name.
func familyOf(fams map[string]*Family, name string) string {
	if f, ok := fams[name]; ok && f.Type != "" {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := fams[base]; ok && f.Type == TypeHistogram {
				return base
			}
		}
	}
	return name
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\' && inQuote:
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// The format allows an optional timestamp after the value; the registry
	// never emits one, so a second field is an error here.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return s, fmt.Errorf("unexpected trailing field in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		rest := s[eq+2:]
		var sb strings.Builder
		i, closed := 0, false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %s", name)
		}
		into[name] = sb.String()
		s = strings.TrimPrefix(rest[i:], ",")
	}
	return nil
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Lint checks exposition text against the format rules plus the repo's own
// conventions, returning one message per problem (empty means clean):
//
//   - every sample's family has both HELP and TYPE lines
//   - metric and label names are legal; no reserved `__` label prefix
//   - counter family names end in `_total`
//   - no duplicate series (same name + label set twice)
//   - histogram children have ascending-cumulative buckets, an `le="+Inf"`
//     bucket equal to `_count`, and a `_sum`
func Lint(text string) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	fams, err := Parse(text)
	if err != nil {
		return []string{fmt.Sprintf("parse: %v", err)}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if !metricNameRE.MatchString(name) {
			bad("family %s: illegal metric name", name)
		}
		if f.Type == "" {
			bad("family %s: missing TYPE line", name)
		}
		if f.Help == "" {
			bad("family %s: missing HELP line", name)
		}
		if f.Type == TypeCounter && !strings.HasSuffix(name, "_total") {
			bad("family %s: counter name should end in _total", name)
		}
		seen := map[string]bool{}
		for _, s := range f.Samples {
			for ln := range s.Labels {
				if !labelNameRE.MatchString(ln) {
					bad("family %s: illegal label name %q", name, ln)
				}
				if strings.HasPrefix(ln, "__") {
					bad("family %s: reserved label name %q", name, ln)
				}
			}
			key := s.Name + "|" + labelKey(s.Labels)
			if seen[key] {
				bad("family %s: duplicate series %s{%s}", name, s.Name, labelKey(s.Labels))
			}
			seen[key] = true
		}
		if f.Type == TypeHistogram {
			lintHistogram(f, bad)
		}
	}
	return problems
}

// lintHistogram groups a histogram family's samples into children by their
// non-le label set and checks each child's bucket/sum/count consistency.
func lintHistogram(f *Family, bad func(string, ...any)) {
	type hchild struct {
		buckets  []Sample
		hasInf   bool
		infCount float64
		count    float64
		hasCount bool
		hasSum   bool
	}
	children := map[string]*hchild{}
	get := func(s Sample) *hchild {
		labels := map[string]string{}
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		key := labelKey(labels)
		c, ok := children[key]
		if !ok {
			c = &hchild{}
			children[key] = c
		}
		return c
	}
	for _, s := range f.Samples {
		c := get(s)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Labels["le"] == "+Inf" {
				c.hasInf = true
				c.infCount = s.Value
			}
			c.buckets = append(c.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			c.hasCount = true
			c.count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			c.hasSum = true
		default:
			bad("family %s: stray histogram sample %s", f.Name, s.Name)
		}
	}
	keys := make([]string, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c := children[key]
		if !c.hasInf {
			bad("family %s{%s}: no le=\"+Inf\" bucket", f.Name, key)
		}
		if !c.hasCount || !c.hasSum {
			bad("family %s{%s}: missing _count or _sum", f.Name, key)
		}
		if c.hasInf && c.hasCount && c.infCount != c.count {
			bad("family %s{%s}: +Inf bucket %v != _count %v", f.Name, key, c.infCount, c.count)
		}
		// Buckets must be sorted by le and cumulative counts non-decreasing.
		sort.Slice(c.buckets, func(i, j int) bool {
			return leValue(c.buckets[i].Labels["le"]) < leValue(c.buckets[j].Labels["le"])
		})
		prev := -1.0
		for _, b := range c.buckets {
			if b.Value < prev {
				bad("family %s{%s}: bucket counts not monotone at le=%s", f.Name, key, b.Labels["le"])
			}
			prev = b.Value
		}
	}
}

func leValue(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0
	}
	return v
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	return sb.String()
}

// CounterTotals sums every counter family's samples (all label children) —
// the convenient shape for loadgen's before/after scrape diff.
func CounterTotals(fams map[string]*Family) map[string]float64 {
	out := map[string]float64{}
	for name, f := range fams {
		if f.Type != TypeCounter {
			continue
		}
		for _, s := range f.Samples {
			out[name] += s.Value
		}
	}
	return out
}

// HistogramQuantile estimates quantile q (0..1) for a histogram family child
// from its cumulative buckets, interpolating linearly inside the winning
// bucket — the standard Prometheus histogram_quantile estimate.
func HistogramQuantile(f *Family, q float64) (float64, bool) {
	type pt struct{ le, cum float64 }
	var pts []pt
	for _, s := range f.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			pts = append(pts, pt{leValue(s.Labels["le"]), s.Value})
		}
	}
	if len(pts) == 0 {
		return 0, false
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
	total := pts[len(pts)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for i, p := range pts {
		if p.cum >= rank {
			lo, locum := 0.0, 0.0
			if i > 0 {
				lo, locum = pts[i-1].le, pts[i-1].cum
			}
			if math.IsInf(p.le, 1) || p.le > 1e307 {
				return lo, true
			}
			if p.cum == locum {
				return p.le, true
			}
			return lo + (p.le-lo)*(rank-locum)/(p.cum-locum), true
		}
	}
	return pts[len(pts)-1].le, true
}

package live

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func newFleet(ids ...device.ID) *device.Fleet {
	reg := device.NewRegistry()
	for _, id := range ids {
		reg.Add(device.Info{ID: id, Kind: device.KindPlug, Initial: device.Off})
	}
	return device.NewFleet(reg)
}

// loopPoster is a miniature home runtime: one goroutine drains a callback
// queue, giving the controller the serialized context internal/runtime's
// mailbox provides in production.
type loopPoster struct {
	ops  chan func()
	done chan struct{}
}

func newLoopPoster() *loopPoster {
	p := &loopPoster{ops: make(chan func(), 64), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		for fn := range p.ops {
			fn()
		}
	}()
	return p
}

func (p *loopPoster) PostCompletion(done func(error), err error) { p.ops <- func() { done(err) } }
func (p *loopPoster) PostTimer(fn func())                        { p.ops <- fn }

// run executes fn on the loop goroutine and waits for it.
func (p *loopPoster) run(fn func()) {
	ran := make(chan struct{})
	p.ops <- func() { fn(); close(ran) }
	<-ran
}

func (p *loopPoster) close() {
	close(p.ops)
	<-p.done
}

func TestEnvImplementsVisibilityEnv(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	var env visibility.Env = New(p, newFleet("a"))
	if env.Now().IsZero() {
		t.Fatal("Now() returned zero time")
	}
}

func TestExecActuatesAndCompletes(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	fleet := newFleet("a")
	var contacts []bool
	env := New(p, fleet)
	env.OnContact = func(_ device.ID, ok bool) { contacts = append(contacts, ok) }

	done := make(chan error, 1)
	start := time.Now()
	env.Exec(1, routine.Command{Device: "a", Target: device.On}, 30*time.Millisecond, func(err error) {
		done <- err
	})

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Exec completion err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exec never completed")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("Exec completed after %v, want >= hold duration", elapsed)
	}
	if st, _ := fleet.Status("a"); st != device.On {
		t.Errorf("device state = %q, want ON", st)
	}
	env.Wait()
	if len(contacts) != 1 || !contacts[0] {
		t.Errorf("contacts = %v, want one successful contact", contacts)
	}
}

func TestExecReportsFailureFast(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	fleet := newFleet("a")
	if err := fleet.Fail("a"); err != nil {
		t.Fatal(err)
	}
	env := New(p, fleet)
	done := make(chan error, 1)
	env.Exec(1, routine.Command{Device: "a", Target: device.On}, time.Hour, func(err error) {
		done <- err
	})
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Exec to a failed device should report an error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failed Exec should not wait out the hold duration")
	}
}

func TestAfterAndCancel(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	env := New(p, newFleet("a"))

	fired := make(chan struct{}, 1)
	env.After(20*time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("After callback never fired")
	}

	cancelled := make(chan struct{}, 1)
	cancel := env.After(50*time.Millisecond, func() { cancelled <- struct{}{} })
	cancel()
	select {
	case <-cancelled:
		t.Fatal("cancelled timer still fired")
	case <-time.After(150 * time.Millisecond):
	}
}

func TestLiveControllerEndToEnd(t *testing.T) {
	// Run a real EV controller over the live environment with an in-memory
	// fleet: the cooling routine and a conflicting lights routine must both
	// commit, with a serializable end state. The loopPoster serializes every
	// controller entry, standing in for the runtime mailbox.
	p := newLoopPoster()
	defer p.close()
	fleet := newFleet("window", "ac", "light")
	env := New(p, fleet)
	opts := visibility.DefaultOptions(visibility.EV)
	opts.DefaultShort = 10 * time.Millisecond

	var ctrl visibility.Controller
	p.run(func() {
		ctrl = visibility.New(env, fleet.Snapshot(), opts)
		ctrl.Submit(routine.New("cooling",
			routine.Command{Device: "window", Target: device.Closed},
			routine.Command{Device: "ac", Target: device.On}))
		ctrl.Submit(routine.New("lights",
			routine.Command{Device: "light", Target: device.On},
			routine.Command{Device: "ac", Target: device.Off}))
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		var pending int
		p.run(func() { pending = ctrl.PendingCount() })
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live controller did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}

	p.run(func() {
		for _, res := range ctrl.Results() {
			if res.Status != visibility.StatusCommitted {
				t.Errorf("routine %s = %v (%s)", res.Routine.Name, res.Status, res.AbortReason)
			}
		}
	})
	if st, _ := fleet.Status("window"); st != device.Closed {
		t.Errorf("window = %q, want CLOSED", st)
	}
}

package live

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// scriptedActuator fails while broken and counts Apply attempts.
type scriptedActuator struct {
	mu      sync.Mutex
	broken  bool
	applies int
	block   chan struct{} // non-nil: Apply parks until closed (timeout tests)
}

func (a *scriptedActuator) Apply(id device.ID, target device.State) error {
	a.mu.Lock()
	a.applies++
	broken, block := a.broken, a.block
	a.mu.Unlock()
	if block != nil {
		<-block
	}
	if broken {
		return fmt.Errorf("%w: %s: scripted failure", device.ErrUnavailable, id)
	}
	return nil
}

func (a *scriptedActuator) Status(id device.ID) (device.State, error) { return device.On, nil }
func (a *scriptedActuator) Ping(id device.ID) error                   { return nil }

func (a *scriptedActuator) setBroken(b bool) {
	a.mu.Lock()
	a.broken = b
	a.mu.Unlock()
}

func (a *scriptedActuator) attempts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applies
}

// execWait runs one command through the env and returns its completion error.
func execWait(e *Env, id device.ID) error {
	ch := make(chan error, 1)
	e.Exec(1, routine.Command{Device: id, Target: device.On}, 0, func(err error) { ch <- err })
	select {
	case err := <-ch:
		return err
	case <-time.After(10 * time.Second):
		return errors.New("test: command never completed")
	}
}

func TestBreakerOpensAtThresholdAndShortCircuits(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	act := &scriptedActuator{broken: true}
	e := NewWithOptions(p, act, Options{
		Timeout:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no half-open during the test
	})

	for i := 0; i < 2; i++ {
		if err := execWait(e, "plug"); !errors.Is(err, device.ErrUnavailable) {
			t.Fatalf("failure %d = %v, want ErrUnavailable", i, err)
		}
	}
	if st := e.BreakerState("plug"); st != BreakerOpen {
		t.Fatalf("breaker = %v after %d failures, want open", st, 2)
	}

	// Open breaker: the device is not contacted at all.
	before := act.attempts()
	if err := execWait(e, "plug"); !errors.Is(err, device.ErrUnavailable) {
		t.Fatalf("short-circuit error = %v, want ErrUnavailable", err)
	}
	if got := act.attempts(); got != before {
		t.Errorf("open breaker still contacted the device (%d -> %d attempts)", before, got)
	}
	if n := e.ShortCircuits(); n != 1 {
		t.Errorf("ShortCircuits = %d, want 1", n)
	}
	stats := e.Breakers()
	if len(stats) != 1 || stats[0].Opens != 1 || stats[0].State != "open" {
		t.Errorf("Breakers() = %+v, want one open breaker with opens=1", stats)
	}
}

func TestBreakerCountsEveryAttempt(t *testing.T) {
	// Retries are device exchanges too: one command with Retries=1 against a
	// dead device must trip a threshold-2 breaker by itself.
	p := newLoopPoster()
	defer p.close()
	act := &scriptedActuator{broken: true}
	e := NewWithOptions(p, act, Options{
		Timeout:          -1,
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err := execWait(e, "plug"); !errors.Is(err, device.ErrUnavailable) {
		t.Fatalf("command = %v, want ErrUnavailable", err)
	}
	if got := act.attempts(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (initial + retry)", got)
	}
	if st := e.BreakerState("plug"); st != BreakerOpen {
		t.Errorf("breaker = %v after one retried command, want open", st)
	}
}

func TestBreakerHalfOpenProbeDecides(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	act := &scriptedActuator{broken: true}
	e := NewWithOptions(p, act, Options{
		Timeout:          -1,
		BreakerThreshold: 1,
		BreakerCooldown:  20 * time.Millisecond,
	})

	execWait(e, "plug") // opens
	if st := e.BreakerState("plug"); st != BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}

	// Probe against a still-broken device re-opens.
	time.Sleep(25 * time.Millisecond)
	if err := execWait(e, "plug"); err == nil {
		t.Fatal("probe against broken device succeeded")
	}
	if st := e.BreakerState("plug"); st != BreakerOpen {
		t.Fatalf("breaker = %v after failed probe, want open again", st)
	}

	// Probe against a healed device closes.
	act.setBroken(false)
	time.Sleep(25 * time.Millisecond)
	if err := execWait(e, "plug"); err != nil {
		t.Fatalf("probe against healed device = %v, want success", err)
	}
	if st := e.BreakerState("plug"); st != BreakerClosed {
		t.Errorf("breaker = %v after successful probe, want closed", st)
	}
	stats := e.Breakers()
	if len(stats) != 1 || stats[0].Opens != 2 {
		t.Errorf("Breakers() = %+v, want opens=2 (initial + failed probe)", stats)
	}
}

func TestSuccessResetsConsecutiveFailures(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	act := &scriptedActuator{}
	e := NewWithOptions(p, act, Options{
		Timeout:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	act.setBroken(true)
	execWait(e, "plug") // fails: 1 consecutive
	act.setBroken(false)
	execWait(e, "plug") // success resets
	act.setBroken(true)
	execWait(e, "plug") // fails: 1 consecutive again
	if st := e.BreakerState("plug"); st != BreakerClosed {
		t.Errorf("breaker = %v, want closed (successes reset the count)", st)
	}
}

func TestAttemptTimeoutBoundsWedgedDevice(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	block := make(chan struct{})
	defer close(block)
	act := &scriptedActuator{block: block}
	e := NewWithOptions(p, act, Options{
		Timeout:          20 * time.Millisecond,
		BreakerThreshold: -1, // isolate the timeout path
	})
	start := time.Now()
	err := execWait(e, "plug")
	if !errors.Is(err, device.ErrUnavailable) {
		t.Fatalf("wedged device = %v, want ErrUnavailable", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("timeout took %v, want ~20ms", waited)
	}
}

func TestOnContactSeesEveryOutcome(t *testing.T) {
	p := newLoopPoster()
	defer p.close()
	act := &scriptedActuator{broken: true}
	e := NewWithOptions(p, act, Options{
		Timeout:          -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	var mu sync.Mutex
	var contacts []bool
	e.OnContact = func(id device.ID, ok bool) {
		mu.Lock()
		contacts = append(contacts, ok)
		mu.Unlock()
	}
	execWait(e, "plug") // real failure -> opens
	execWait(e, "plug") // short-circuit: still reported as a silence
	act.setBroken(false)
	mu.Lock()
	got := append([]bool(nil), contacts...)
	mu.Unlock()
	if len(got) != 2 || got[0] || got[1] {
		t.Errorf("OnContact outcomes = %v, want [false false] (failure then short-circuit)", got)
	}
}

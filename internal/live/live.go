// Package live provides the real-time execution environment for SafeHome's
// concurrency controllers: commands actuate real (or emulated) devices
// through a device.Actuator and holds are real wall-clock durations. Every
// callback — command completions and timer firings — is posted into the
// home runtime's operation mailbox (the Poster), so the controllers keep the
// same single-threaded view they have under simulation without any lock
// shared across packages.
//
// The actuation path is hardened against misbehaving devices: each attempt
// is bounded by a per-attempt timeout, failures are retried with jittered
// exponential backoff, and a per-device circuit breaker fails commands fast
// while a device is flapping — the failure is reported through OnContact so
// the failure detector (and through it the controller) learns the device is
// offline, instead of every routine rediscovering it at full timeout cost.
package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Poster delivers environment callbacks into the controller's serialized
// context. internal/runtime implements it by enqueueing typed operations in
// the home's mailbox; tests may run callbacks on any single goroutine.
type Poster interface {
	// PostCompletion delivers a command completion (done(err)) to the
	// controller's goroutine.
	PostCompletion(done func(error), err error)
	// PostTimer delivers an expired timer's callback to the controller's
	// goroutine.
	PostTimer(fn func())
}

// Actuation-path defaults.
const (
	// DefaultTimeout bounds one actuation attempt.
	DefaultTimeout = 10 * time.Second
	// DefaultRetryBackoff is the base of the jittered retry backoff.
	DefaultRetryBackoff = 25 * time.Millisecond
	// DefaultBreakerThreshold opens a device's breaker after this many
	// consecutive failed actuation attempts.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker waits before
	// admitting a single probe command (half-open).
	DefaultBreakerCooldown = 3 * time.Second
)

// Options tunes the actuation path. The zero value means defaults.
type Options struct {
	// Timeout bounds one actuation attempt; an exchange exceeding it fails
	// with device.ErrUnavailable (0 = DefaultTimeout; negative disables).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried before the
	// failure reaches the controller (default 0: the paper's abort semantics
	// apply on the first failure; owners opt in to retries).
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// retries (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// BreakerThreshold opens a device's circuit breaker after this many
	// consecutive failed actuation attempts — retries included (0 =
	// DefaultBreakerThreshold; negative disables breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open wait (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
}

func (o Options) normalized() Options {
	if o.Timeout == 0 {
		o.Timeout = DefaultTimeout
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	return o
}

// BreakerState is one circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: commands flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: commands fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe command is in flight; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one device's circuit breaker. Guarded by Env.mu.
type breaker struct {
	state     BreakerState
	fails     int       // consecutive failures
	reopens   time.Time // when an open breaker admits its probe
	probing   bool      // a half-open probe is in flight
	opens     int64     // times the breaker has opened (monotonic)
	halfOpens int64     // times an open breaker admitted a probe (monotonic)
	shorts    int64     // commands failed fast on this breaker (monotonic)
}

// BreakerStats is one device's breaker position for Status surfaces and the
// /metrics breaker collector. State is the current position; Opens,
// HalfOpens and ShortCircuits are monotone per-device transition counters.
type BreakerStats struct {
	Device        device.ID `json:"device"`
	State         string    `json:"state"`
	Fails         int       `json:"consecutive_failures,omitempty"`
	Opens         int64     `json:"opens,omitempty"`
	HalfOpens     int64     `json:"half_opens,omitempty"`
	ShortCircuits int64     `json:"short_circuits,omitempty"`
}

// Env implements visibility.Env over wall-clock time and a device actuator.
type Env struct {
	poster   Poster
	actuator device.Actuator
	opts     Options

	// OnContact, if set, is called (from the command goroutine, outside the
	// controller's context) after every device exchange with the exchange's
	// success — the runtime uses it to feed implicit acks/silences to the
	// failure detector. A breaker's fast-fail also reports a silence, so the
	// detector (and the controller) see an open breaker as device-offline.
	OnContact func(id device.ID, ok bool)

	// inflight counts command goroutines; a WaitGroup cannot be used here
	// because draining a completion may chain the routine's next Exec, and
	// Add-from-zero concurrent with Wait is a WaitGroup reuse violation.
	inflight atomic.Int64

	mu            sync.Mutex
	breakers      map[device.ID]*breaker
	shortCircuits atomic.Int64 // commands failed fast on an open breaker
}

// New builds a live environment with default actuation options.
func New(poster Poster, actuator device.Actuator) *Env {
	return NewWithOptions(poster, actuator, Options{})
}

// NewWithOptions builds a live environment delivering its callbacks through
// the poster, with the given actuation-path tuning.
func NewWithOptions(poster Poster, actuator device.Actuator, opts Options) *Env {
	return &Env{
		poster:   poster,
		actuator: actuator,
		opts:     opts.normalized(),
		breakers: make(map[device.ID]*breaker),
	}
}

// Now implements visibility.Env.
func (e *Env) Now() time.Time { return time.Now() }

// After implements visibility.Env.
func (e *Env) After(d time.Duration, fn func()) (cancel func()) {
	timer := time.AfterFunc(d, func() { e.poster.PostTimer(fn) })
	return func() { timer.Stop() }
}

// Exec implements visibility.Env: the device is actuated immediately, the
// exclusive hold lasts for the command's duration, and done is posted into
// the controller's mailbox. The completion is posted before the in-flight
// count drops, so Wait callers observe it queued.
func (e *Env) Exec(rid routine.ID, cmd routine.Command, hold time.Duration, done func(error)) {
	e.inflight.Add(1)
	go func() {
		defer e.inflight.Add(-1)
		err := e.actuate(cmd.Device, cmd.Target)
		if err == nil {
			time.Sleep(hold)
		}
		e.poster.PostCompletion(done, err)
	}()
}

// actuate runs one command through the device's breaker, the per-attempt
// timeout and the retry policy. It runs on the command goroutine.
func (e *Env) actuate(id device.ID, target device.State) error {
	probe, admitted := e.admit(id)
	if !admitted {
		e.shortCircuits.Add(1)
		if e.OnContact != nil {
			e.OnContact(id, false)
		}
		return fmt.Errorf("%w: %s: circuit breaker open", device.ErrUnavailable, id)
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = e.applyOnce(id, target)
		// Every attempt is a device exchange, so each one folds into the
		// breaker: a flapping device trips it mid-retry, not one whole
		// command later.
		e.record(id, err == nil, probe)
		// A half-open probe never retries: one command decides the breaker.
		if err == nil || probe || attempt >= e.opts.Retries {
			break
		}
		time.Sleep(jittered(e.opts.RetryBackoff << attempt))
	}
	if e.OnContact != nil {
		e.OnContact(id, err == nil)
	}
	return err
}

// applyOnce is one bounded actuation attempt. The exchange runs on a helper
// goroutine so a wedged device RPC cannot stall the command pipeline past
// the timeout; a late completion is dropped into the buffered channel.
func (e *Env) applyOnce(id device.ID, target device.State) error {
	if e.opts.Timeout <= 0 {
		return e.actuator.Apply(id, target)
	}
	ch := make(chan error, 1)
	go func() { ch <- e.actuator.Apply(id, target) }()
	t := time.NewTimer(e.opts.Timeout)
	defer t.Stop()
	select {
	case err := <-ch:
		return err
	case <-t.C:
		return fmt.Errorf("%w: %s: no response within %s", device.ErrUnavailable, id, e.opts.Timeout)
	}
}

// admit consults the device's breaker: closed admits freely, open fails fast
// until the cooldown elapses, then exactly one probe is admitted.
func (e *Env) admit(id device.ID) (probe, admitted bool) {
	if e.opts.BreakerThreshold <= 0 {
		return false, true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.breakers[id]
	if b == nil {
		b = &breaker{}
		e.breakers[id] = b
	}
	switch b.state {
	case BreakerOpen:
		if time.Now().Before(b.reopens) {
			b.shorts++
			return false, false
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			b.shorts++
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return false, true
	}
}

// record folds an actuation outcome into the device's breaker.
func (e *Env) record(id device.ID, ok, probe bool) {
	if e.opts.BreakerThreshold <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.breakers[id]
	if b == nil {
		return
	}
	if probe {
		b.probing = false
	}
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= e.opts.BreakerThreshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.reopens = time.Now().Add(e.opts.BreakerCooldown)
	}
}

// jittered adds up to +50% random jitter so retries against a recovering
// device don't synchronize.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Breakers reports every device breaker that has seen traffic, sorted by
// device ID.
func (e *Env) Breakers() []BreakerStats {
	e.mu.Lock()
	out := make([]BreakerStats, 0, len(e.breakers))
	for id, b := range e.breakers {
		out = append(out, BreakerStats{Device: id, State: b.state.String(), Fails: b.fails,
			Opens: b.opens, HalfOpens: b.halfOpens, ShortCircuits: b.shorts})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// BreakerState reports one device's breaker position (closed if the device
// has never been actuated).
func (e *Env) BreakerState(id device.ID) BreakerState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b := e.breakers[id]; b != nil {
		return b.state
	}
	return BreakerClosed
}

// ShortCircuits counts commands failed fast on an open breaker.
func (e *Env) ShortCircuits() int64 { return e.shortCircuits.Load() }

// DeviceState implements visibility.Env.
func (e *Env) DeviceState(d device.ID) (device.State, error) {
	st, err := e.actuator.Status(d)
	if e.OnContact != nil {
		e.OnContact(d, err == nil)
	}
	return st, err
}

// Wait blocks until every in-flight command goroutine has posted its
// completion. Processing those completions may chain further commands (a
// routine's next step, an abort rollback), so graceful shutdown alternates
// Wait with a mailbox drain until Idle reports true. Wait polls — it only
// runs on shutdown paths.
func (e *Env) Wait() {
	for !e.Idle() {
		time.Sleep(100 * time.Microsecond)
	}
}

// Idle reports whether no command goroutines are in flight. Exec increments
// the count synchronously, so a caller that has just drained the mailbox
// (every queued completion applied, any chained Exec already counted) sees
// Idle only when the cascade has truly finished.
func (e *Env) Idle() bool { return e.inflight.Load() == 0 }

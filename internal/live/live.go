// Package live provides the real-time execution environment for SafeHome's
// concurrency controllers: commands actuate real (or emulated) devices
// through a device.Actuator, holds are real wall-clock durations, and every
// callback re-enters the controller under the hub's lock — giving the
// controllers the same single-threaded view they have under simulation.
package live

import (
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Env implements visibility.Env over wall-clock time and a device actuator.
type Env struct {
	mu       *sync.Mutex
	actuator device.Actuator

	// OnContact, if set, is called (outside the lock) after every device
	// exchange with the exchange's success — the hub uses it to feed implicit
	// acks/silences to the failure detector.
	OnContact func(id device.ID, ok bool)

	wg sync.WaitGroup
}

// New builds a live environment. mu is the lock that serializes the
// controller (the hub's lock); callbacks are delivered while holding it.
func New(mu *sync.Mutex, actuator device.Actuator) *Env {
	return &Env{mu: mu, actuator: actuator}
}

// Now implements visibility.Env.
func (e *Env) Now() time.Time { return time.Now() }

// After implements visibility.Env.
func (e *Env) After(d time.Duration, fn func()) (cancel func()) {
	timer := time.AfterFunc(d, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		fn()
	})
	return func() { timer.Stop() }
}

// Exec implements visibility.Env: the device is actuated immediately, the
// exclusive hold lasts for the command's duration, and done is delivered
// under the controller lock.
func (e *Env) Exec(rid routine.ID, cmd routine.Command, hold time.Duration, done func(error)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		err := e.actuator.Apply(cmd.Device, cmd.Target)
		if e.OnContact != nil {
			e.OnContact(cmd.Device, err == nil)
		}
		if err == nil {
			time.Sleep(hold)
		}
		e.mu.Lock()
		done(err)
		e.mu.Unlock()
	}()
}

// DeviceState implements visibility.Env.
func (e *Env) DeviceState(d device.ID) (device.State, error) {
	st, err := e.actuator.Status(d)
	if e.OnContact != nil {
		e.OnContact(d, err == nil)
	}
	return st, err
}

// Wait blocks until every in-flight command goroutine has delivered its
// completion. It is used by tests and by graceful hub shutdown.
func (e *Env) Wait() { e.wg.Wait() }

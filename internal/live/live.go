// Package live provides the real-time execution environment for SafeHome's
// concurrency controllers: commands actuate real (or emulated) devices
// through a device.Actuator and holds are real wall-clock durations. Every
// callback — command completions and timer firings — is posted into the
// home runtime's operation mailbox (the Poster), so the controllers keep the
// same single-threaded view they have under simulation without any lock
// shared across packages.
package live

import (
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Poster delivers environment callbacks into the controller's serialized
// context. internal/runtime implements it by enqueueing typed operations in
// the home's mailbox; tests may run callbacks on any single goroutine.
type Poster interface {
	// PostCompletion delivers a command completion (done(err)) to the
	// controller's goroutine.
	PostCompletion(done func(error), err error)
	// PostTimer delivers an expired timer's callback to the controller's
	// goroutine.
	PostTimer(fn func())
}

// Env implements visibility.Env over wall-clock time and a device actuator.
type Env struct {
	poster   Poster
	actuator device.Actuator

	// OnContact, if set, is called (from the command goroutine, outside the
	// controller's context) after every device exchange with the exchange's
	// success — the runtime uses it to feed implicit acks/silences to the
	// failure detector.
	OnContact func(id device.ID, ok bool)

	// inflight counts command goroutines; a WaitGroup cannot be used here
	// because draining a completion may chain the routine's next Exec, and
	// Add-from-zero concurrent with Wait is a WaitGroup reuse violation.
	inflight atomic.Int64
}

// New builds a live environment delivering its callbacks through the poster.
func New(poster Poster, actuator device.Actuator) *Env {
	return &Env{poster: poster, actuator: actuator}
}

// Now implements visibility.Env.
func (e *Env) Now() time.Time { return time.Now() }

// After implements visibility.Env.
func (e *Env) After(d time.Duration, fn func()) (cancel func()) {
	timer := time.AfterFunc(d, func() { e.poster.PostTimer(fn) })
	return func() { timer.Stop() }
}

// Exec implements visibility.Env: the device is actuated immediately, the
// exclusive hold lasts for the command's duration, and done is posted into
// the controller's mailbox. The completion is posted before the in-flight
// count drops, so Wait callers observe it queued.
func (e *Env) Exec(rid routine.ID, cmd routine.Command, hold time.Duration, done func(error)) {
	e.inflight.Add(1)
	go func() {
		defer e.inflight.Add(-1)
		err := e.actuator.Apply(cmd.Device, cmd.Target)
		if e.OnContact != nil {
			e.OnContact(cmd.Device, err == nil)
		}
		if err == nil {
			time.Sleep(hold)
		}
		e.poster.PostCompletion(done, err)
	}()
}

// DeviceState implements visibility.Env.
func (e *Env) DeviceState(d device.ID) (device.State, error) {
	st, err := e.actuator.Status(d)
	if e.OnContact != nil {
		e.OnContact(d, err == nil)
	}
	return st, err
}

// Wait blocks until every in-flight command goroutine has posted its
// completion. Processing those completions may chain further commands (a
// routine's next step, an abort rollback), so graceful shutdown alternates
// Wait with a mailbox drain until Idle reports true. Wait polls — it only
// runs on shutdown paths.
func (e *Env) Wait() {
	for !e.Idle() {
		time.Sleep(100 * time.Microsecond)
	}
}

// Idle reports whether no command goroutines are in flight. Exec increments
// the count synchronously, so a caller that has just drained the mailbox
// (every queued completion applied, any chained Exec already counted) sees
// Idle only when the cascade has truly finished.
func (e *Env) Idle() bool { return e.inflight.Load() == 0 }

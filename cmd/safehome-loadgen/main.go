// Command safehome-loadgen is an open-loop HTTP load generator for the
// SafeHome hub: it submits routines at a controlled request rate and reports
// end-to-end latency percentiles (p50/p99/p999), the shed (429) rate, and a
// before/after diff of the hub's own /metrics counters — the tool that turns
// the durability-tier and hibernation microbenchmarks into end-to-end
// numbers.
//
// Open-loop means the dispatch schedule never waits for responses: request i
// fires at start + i/RPS regardless of how slow the server is, which is what
// exposes queueing collapse (a closed-loop generator self-throttles and
// hides it). A bounded in-flight cap keeps a melted-down target from
// accumulating unbounded goroutines; requests that would exceed it are
// counted as dropped, not silently skipped.
//
// Against a multi-tenant hub (-homes N) traffic spreads over the homes with
// a Zipf(-zipf) popularity skew — tenant 0 hottest — and -idle-fraction
// holds the coldest fraction of homes completely idle, so hibernation
// behavior under realistic skew is visible in the freeze/wake counters of
// the final scrape diff. With -homes 0 every request hits the single-home
// hub's /api/routines.
//
// Usage:
//
//	safehome-hub -listen :8123 -homes 64 -shards 4 -data /tmp/wal -durability group &
//	safehome-loadgen -target http://127.0.0.1:8123 -homes 64 -rps 300 -duration 30s -zipf 1.2 -idle-fraction 0.25
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/telemetry"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8123", "base URL of the hub to load")
		rps      = flag.Float64("rps", 200, "open-loop dispatch rate, requests per second")
		duration = flag.Duration("duration", 10*time.Second, "how long to dispatch")
		homes    = flag.Int("homes", 0, "number of homes to spread traffic over (0 = single-home hub API)")
		prefix   = flag.String("home-prefix", "home-", "home ID prefix; homes are {prefix}0..{prefix}N-1")
		plugs    = flag.Int("plugs", 5, "plugs per home when creating missing homes, and the device fan-out routines pick from")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf skew across homes (s parameter; <= 1 means uniform)")
		idle     = flag.Float64("idle-fraction", 0, "fraction of homes that receive no traffic at all (0..0.9) — the hibernation knob")
		holdMS   = flag.Int("hold-ms", 0, "per-command hold duration in milliseconds")
		inflight = flag.Int("max-inflight", 512, "in-flight request cap; dispatches beyond it are counted as dropped")
		seed     = flag.Int64("seed", 1, "random seed for home selection")
		outPath  = flag.String("out", "", "also write the report as JSON to this path")
	)
	flag.Parse()
	if *rps <= 0 || *duration <= 0 {
		log.Fatal("safehome-loadgen: -rps and -duration must be positive")
	}
	if *idle < 0 || *idle > 0.9 {
		log.Fatal("safehome-loadgen: -idle-fraction must be in [0, 0.9]")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	base := strings.TrimRight(*target, "/")

	if *homes > 0 {
		ensureHomes(client, base, *prefix, *homes, *plugs)
	}
	before := scrape(client, base)

	res := run(client, config{
		base: base, rps: *rps, duration: *duration, homes: *homes, prefix: *prefix,
		plugs: *plugs, zipfS: *zipfS, idle: *idle, holdMS: *holdMS,
		inflight: *inflight, seed: *seed,
	})
	after := scrape(client, base)

	report(res, before, after)
	if *outPath != "" {
		writeJSONReport(*outPath, res, before, after)
	}
	if res.sent == 0 {
		os.Exit(1)
	}
}

type config struct {
	base     string
	rps      float64
	duration time.Duration
	homes    int
	prefix   string
	plugs    int
	zipfS    float64
	idle     float64
	holdMS   int
	inflight int
	seed     int64
}

type results struct {
	cfg       config
	elapsed   time.Duration
	sent      int64
	ok        int64
	shed      int64 // HTTP 429
	errors    int64 // transport errors + non-2xx/429 statuses
	dropped   int64 // never dispatched: in-flight cap reached
	latencies []time.Duration
}

// run dispatches requests open-loop until the duration elapses, then waits
// for stragglers.
func run(client *http.Client, cfg config) *results {
	res := &results{cfg: cfg}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var okCount, shedCount, errCount atomic.Int64

	sem := make(chan struct{}, cfg.inflight)
	rng := rand.New(rand.NewSource(cfg.seed))

	// The active home pool: the coldest -idle-fraction of homes gets nothing.
	active := cfg.homes - int(float64(cfg.homes)*cfg.idle)
	if cfg.homes > 0 && active < 1 {
		active = 1
	}
	var zipf *rand.Zipf
	if cfg.homes > 0 && cfg.zipfS > 1 && active > 1 {
		zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(active-1))
	}

	interval := time.Duration(float64(time.Second) / cfg.rps)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for i := int64(0); ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			res.dropped++
			continue
		}
		res.sent++
		url, body := buildRequest(cfg, rng, zipf, active, res.sent)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, err := post(client, url, body)
			lat := time.Since(t0)
			switch {
			case err != nil:
				errCount.Add(1)
			case status == http.StatusTooManyRequests:
				shedCount.Add(1)
			case status >= 200 && status < 300:
				okCount.Add(1)
				mu.Lock()
				res.latencies = append(res.latencies, lat)
				mu.Unlock()
			default:
				errCount.Add(1)
			}
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.ok = okCount.Load()
	res.shed = shedCount.Load()
	res.errors = errCount.Load()
	return res
}

// buildRequest picks the target home (Zipf-skewed over the active pool) and
// a device, and renders the Fig 10-style routine spec.
func buildRequest(cfg config, rng *rand.Rand, zipf *rand.Zipf, active int, n int64) (string, []byte) {
	var url string
	if cfg.homes > 0 {
		var h uint64
		if zipf != nil {
			h = zipf.Uint64()
		} else if active > 1 {
			h = uint64(rng.Intn(active))
		}
		url = fmt.Sprintf("%s/homes/%s%d/routines", cfg.base, cfg.prefix, h)
	} else {
		url = cfg.base + "/api/routines"
	}
	dev := 0
	if cfg.plugs > 1 {
		dev = rng.Intn(cfg.plugs)
	}
	body := fmt.Sprintf(`{"routine_name":"loadgen-%d","user":"loadgen","commands":[{"device":"plug-%d","action":"ON","duration_ms":%d}]}`,
		n, dev, cfg.holdMS)
	return url, []byte(body)
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// ensureHomes creates any missing homes (PUT is idempotent on our side: an
// existing home answers 409, which is fine).
func ensureHomes(client *http.Client, base, prefix string, n, plugs int) {
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("%s/homes/%s%d?plugs=%d", base, prefix, i, plugs)
		req, err := http.NewRequest(http.MethodPut, url, nil)
		if err != nil {
			log.Fatalf("safehome-loadgen: %v", err)
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Fatalf("safehome-loadgen: creating %s%d: %v (is the hub running in -homes mode at %s?)", prefix, i, err, base)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			log.Fatalf("safehome-loadgen: creating %s%d: unexpected status %d", prefix, i, resp.StatusCode)
		}
	}
}

// scrape fetches and parses /metrics; a hub without the endpoint (or a
// scrape error) degrades to an empty map so the run still reports latencies.
func scrape(client *http.Client, base string) map[string]*telemetry.Family {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		log.Printf("safehome-loadgen: scrape: %v", err)
		return map[string]*telemetry.Family{}
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Printf("safehome-loadgen: scrape: status %d err %v", resp.StatusCode, err)
		return map[string]*telemetry.Family{}
	}
	fams, err := telemetry.Parse(string(text))
	if err != nil {
		log.Printf("safehome-loadgen: scrape parse: %v", err)
		return map[string]*telemetry.Family{}
	}
	return fams
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func report(res *results, before, after map[string]*telemetry.Family) {
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	answered := res.ok + res.shed + res.errors
	fmt.Printf("safehome-loadgen: %v at %.0f rps open-loop (%d homes, zipf %.2f, idle %.0f%%)\n",
		res.cfg.duration, res.cfg.rps, res.cfg.homes, res.cfg.zipfS, res.cfg.idle*100)
	fmt.Printf("  dispatched %d  ok %d  shed(429) %d  errors %d  dropped(cap) %d  achieved %.0f rps\n",
		res.sent, res.ok, res.shed, res.errors, res.dropped, float64(answered)/res.elapsed.Seconds())
	if answered > 0 {
		fmt.Printf("  shed rate %.2f%%\n", 100*float64(res.shed)/float64(answered))
	}
	if len(res.latencies) > 0 {
		var sum time.Duration
		for _, l := range res.latencies {
			sum += l
		}
		fmt.Printf("  submit latency  p50 %v  p90 %v  p99 %v  p999 %v  max %v  avg %v\n",
			percentile(res.latencies, 0.50), percentile(res.latencies, 0.90),
			percentile(res.latencies, 0.99), percentile(res.latencies, 0.999),
			res.latencies[len(res.latencies)-1], sum/time.Duration(len(res.latencies)))
	}

	if len(after) == 0 {
		return
	}
	fmt.Printf("  server /metrics diff over the run:\n")
	beforeTotals := telemetry.CounterTotals(before)
	afterTotals := telemetry.CounterTotals(after)
	names := make([]string, 0, len(afterTotals))
	for name := range afterTotals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		delta := afterTotals[name] - beforeTotals[name]
		if delta != 0 {
			fmt.Printf("    %-45s +%.0f\n", name, delta)
		}
	}
	if f, ok := after["safehome_routine_stage_seconds"]; ok {
		// The submit→done span on the home clock (the in-loop view of full
		// routine latency), estimated from the server's own buckets.
		done := &telemetry.Family{Name: f.Name, Type: f.Type}
		for _, s := range f.Samples {
			if s.Labels["stage"] == "done" {
				done.Samples = append(done.Samples, s)
			}
		}
		if q50, ok1 := telemetry.HistogramQuantile(done, 0.5); ok1 {
			q99, _ := telemetry.HistogramQuantile(done, 0.99)
			fmt.Printf("    in-loop routine latency (stage=done, home clock): p50 ~%.4fs p99 ~%.4fs\n", q50, q99)
		}
	}
}

// jsonReport is the machine-readable run record (-out) CI uploads as an
// artifact.
type jsonReport struct {
	Target      string             `json:"target_rps"`
	Duration    string             `json:"duration"`
	Homes       int                `json:"homes"`
	Zipf        float64            `json:"zipf"`
	IdleFrac    float64            `json:"idle_fraction"`
	Dispatched  int64              `json:"dispatched"`
	OK          int64              `json:"ok"`
	Shed        int64              `json:"shed_429"`
	Errors      int64              `json:"errors"`
	Dropped     int64              `json:"dropped_at_cap"`
	AchievedRPS float64            `json:"achieved_rps"`
	ShedRate    float64            `json:"shed_rate"`
	LatencyMS   map[string]float64 `json:"latency_ms"`
	CounterDiff map[string]float64 `json:"metrics_counter_diff"`
}

func writeJSONReport(path string, res *results, before, after map[string]*telemetry.Family) {
	answered := res.ok + res.shed + res.errors
	rep := jsonReport{
		Target:   fmt.Sprintf("%.0f", res.cfg.rps),
		Duration: res.cfg.duration.String(),
		Homes:    res.cfg.homes, Zipf: res.cfg.zipfS, IdleFrac: res.cfg.idle,
		Dispatched: res.sent, OK: res.ok, Shed: res.shed, Errors: res.errors, Dropped: res.dropped,
		LatencyMS:   map[string]float64{},
		CounterDiff: map[string]float64{},
	}
	if res.elapsed > 0 {
		rep.AchievedRPS = float64(answered) / res.elapsed.Seconds()
	}
	if answered > 0 {
		rep.ShedRate = float64(res.shed) / float64(answered)
	}
	for q, name := range map[float64]string{0.50: "p50", 0.90: "p90", 0.99: "p99", 0.999: "p999"} {
		rep.LatencyMS[name] = float64(percentile(res.latencies, q).Microseconds()) / 1000
	}
	beforeTotals := telemetry.CounterTotals(before)
	for name, v := range telemetry.CounterTotals(after) {
		if d := v - beforeTotals[name]; d != 0 {
			rep.CounterDiff[name] = d
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		log.Printf("safehome-loadgen: writing %s: %v", path, err)
	}
}

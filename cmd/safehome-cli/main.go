// Command safehome-cli talks to a running safehome-hub over its HTTP API:
// inspect devices and routines, submit routine specs, manage the routine
// bank, and tail the activity log.
//
// The events subcommand tails /api/events?since=N with a cursor that can be
// persisted to a file (-cursor), so a poller resumes exactly where it left
// off — including across hub restarts, when the hub runs with -data and its
// event sequence numbers stay strictly monotonic through crash recovery.
//
// Usage:
//
//	safehome-cli -hub http://127.0.0.1:8123 status
//	safehome-cli devices
//	safehome-cli routines
//	safehome-cli submit routine.json
//	safehome-cli store routine.json
//	safehome-cli trigger evening-routine
//	safehome-cli events
//	safehome-cli events -cursor /tmp/cursor -follow
//
// Against a multi-home manager (safehome-hub -homes N), -home ID scopes the
// home-level commands to /homes/{id}/...:
//
//	safehome-cli -home home-1 status
//	safehome-cli -home home-1 submit routine.json
//	safehome-cli -home home-1 events -follow
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	hubURL := flag.String("hub", "http://127.0.0.1:8123", "base URL of the safehome-hub API")
	home := flag.String("home", "", "target one home of a multi-home manager (safehome-hub -homes N)")
	timeout := flag.Duration("timeout", 5*time.Second, "HTTP request timeout")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := &client{base: strings.TrimRight(*hubURL, "/"), home: *home, http: &http.Client{Timeout: *timeout}}

	var err error
	switch args[0] {
	case "status":
		err = cli.printJSON("GET", cli.path("/status"), nil)
	case "devices":
		err = cli.printJSON("GET", cli.path("/devices"), nil)
	case "routines":
		err = cli.printJSON("GET", cli.path("/routines"), nil)
	case "routine":
		if len(args) < 2 {
			err = fmt.Errorf("usage: safehome-cli routine <id>")
			break
		}
		err = cli.printJSON("GET", cli.path("/routines/"+args[1]), nil)
	case "submit":
		err = cli.postFile(args[1:], cli.path("/routines"))
	case "store":
		err = cli.singleHomeOnly("store", func() error { return cli.postFile(args[1:], "/api/bank") })
	case "bank":
		err = cli.singleHomeOnly("bank", func() error { return cli.printJSON("GET", "/api/bank", nil) })
	case "trigger":
		if len(args) < 2 {
			err = fmt.Errorf("usage: safehome-cli trigger <name>")
			break
		}
		err = cli.singleHomeOnly("trigger", func() error {
			return cli.printJSON("POST", "/api/bank/"+args[1]+"/trigger", nil)
		})
	case "events":
		err = cli.eventsCmd(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "safehome-cli: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: safehome-cli [-hub URL] [-home ID] <command>

-home ID targets one home of a multi-home manager (safehome-hub -homes N):
status, devices, routines, routine, submit and events then hit
/homes/{id}/... instead of the single hub's /api/... namespace.

commands:
  status              hub summary
  devices             device states and liveness
  routines            all routine results
  routine <id>        one routine result
  submit <spec.json>  submit a routine for execution
  store <spec.json>   save a routine definition in the bank
  bank                list stored routine names
  trigger <name>      dispatch a stored routine
  events              tail controller events (cursor-paged)
      -since N        fetch only events with sequence >= N
      -cursor FILE    resume from (and persist) the cursor in FILE
      -follow         keep polling for new events
      -interval D     poll interval with -follow (default 2s)`)
}

// eventPage mirrors the hub's cursor-paged events response.
type eventPage struct {
	Events []struct {
		Seq     uint64    `json:"seq"`
		Time    time.Time `json:"time"`
		Kind    string    `json:"kind"`
		Routine int64     `json:"routine"`
		Device  string    `json:"device"`
		State   string    `json:"state"`
		Detail  string    `json:"detail"`
	} `json:"events"`
	Next uint64 `json:"next"`
}

// eventsCmd tails /api/events?since=N. The cursor file makes the tail
// resumable: every page's next cursor is persisted, and on start the file's
// cursor (when larger than -since) wins. Cursors only ever move forward —
// the hub's event sequence numbers are strictly monotonic, surviving even a
// hub crash and recovery when the hub runs with -data.
func (c *client) eventsCmd(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	since := fs.Uint64("since", 0, "fetch only events with sequence >= N")
	cursorFile := fs.String("cursor", "", "resume from (and persist) the cursor in this file")
	follow := fs.Bool("follow", false, "keep polling for new events")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cursor := *since
	if *cursorFile != "" {
		if buf, err := os.ReadFile(*cursorFile); err == nil {
			v, perr := strconv.ParseUint(strings.TrimSpace(string(buf)), 10, 64)
			if perr != nil {
				return fmt.Errorf("cursor file %s is corrupt (%v); delete it to restart from -since", *cursorFile, perr)
			}
			if v > cursor {
				cursor = v
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	for {
		var page eventPage
		if err := c.getJSON(c.path("/events")+"?since="+strconv.FormatUint(cursor, 10), &page); err != nil {
			if !*follow {
				return err
			}
			// A follow tail outlives hub restarts: report the hiccup and
			// retry next interval — the persisted cursor resumes exactly.
			fmt.Fprintf(os.Stderr, "safehome-cli: %v (retrying in %s)\n", err, *interval)
			time.Sleep(*interval)
			continue
		}
		for _, e := range page.Events {
			fmt.Printf("%6d  %s  %-18s", e.Seq, e.Time.Format(time.RFC3339), e.Kind)
			if e.Routine != 0 {
				fmt.Printf("  routine=%d", e.Routine)
			}
			if e.Device != "" {
				fmt.Printf("  device=%s", e.Device)
			}
			if e.State != "" {
				fmt.Printf("  state=%s", e.State)
			}
			if e.Detail != "" {
				fmt.Printf("  (%s)", e.Detail)
			}
			fmt.Println()
		}
		if page.Next > cursor {
			cursor = page.Next
		}
		if *cursorFile != "" {
			// Write-then-rename: a poller killed mid-write must not be left
			// with a truncated cursor that replays the whole history.
			tmp := *cursorFile + ".tmp"
			if err := os.WriteFile(tmp, []byte(strconv.FormatUint(cursor, 10)+"\n"), 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, *cursorFile); err != nil {
				return err
			}
		}
		if !*follow {
			return nil
		}
		time.Sleep(*interval)
	}
}

// getJSON fetches path and decodes the response into out.
func (c *client) getJSON(path string, out any) error {
	payload, err := c.fetch("GET", path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(payload, out)
}

type client struct {
	base string
	home string
	http *http.Client
}

// path resolves a home-scoped endpoint: the single hub's /api namespace by
// default, or one home of a multi-home manager when -home is set.
func (c *client) path(suffix string) string {
	if c.home != "" {
		return "/homes/" + c.home + suffix
	}
	return "/api" + suffix
}

// singleHomeOnly rejects commands (routine bank, triggers) that only the
// single-hub API serves when the caller targeted a manager home.
func (c *client) singleHomeOnly(cmd string, run func() error) error {
	if c.home != "" {
		return fmt.Errorf("%s is not available per home; the routine bank lives on the single hub API (drop -home)", cmd)
	}
	return run()
}

func (c *client) postFile(args []string, path string) error {
	if len(args) < 1 {
		return fmt.Errorf("a routine spec file is required")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	return c.printJSON("POST", path, data)
}

// fetchAttempts bounds fetch's retry loop on 429/503: the initial request
// plus three backed-off retries rides out a mailbox burst or a supervised
// home restart without turning a real outage into a hang.
const fetchAttempts = 4

// fetch performs one API request and returns the response payload, turning
// >= 400 statuses into errors. 429 (home overloaded) and 503 (hub or home
// restarting) responses are retried with backoff, honoring the server's
// Retry-After hint when present — capped so a misbehaving server cannot
// park the CLI for minutes.
func (c *client) fetch(method, path string, body []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		payload, retryAfter, err := c.fetchOnce(method, path, body)
		if err == nil {
			return payload, nil
		}
		if retryAfter < 0 || attempt == fetchAttempts-1 {
			return nil, err // not a back-off status, or out of retries
		}
		delay := retryAfter
		if delay <= 0 {
			// No server hint: jittered exponential backoff from 100 ms.
			delay = (100 * time.Millisecond) << attempt
			delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
		}
		if delay > 2*time.Second {
			delay = 2 * time.Second
		}
		time.Sleep(delay)
	}
}

// fetchOnce performs one HTTP round trip. retryAfter is -1 for statuses
// that must not be retried, 0 for retryable statuses without a server hint,
// and the parsed Retry-After duration otherwise.
func (c *client) fetchOnce(method, path string, body []byte) (payload []byte, retryAfter time.Duration, err error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return nil, -1, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, -1, err
	}
	defer resp.Body.Close()
	payload, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, -1, err
	}
	if resp.StatusCode >= 400 {
		retryAfter = -1
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			retryAfter = 0
			if secs, convErr := strconv.Atoi(resp.Header.Get("Retry-After")); convErr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, retryAfter, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
	}
	return payload, -1, nil
}

func (c *client) printJSON(method, path string, body []byte) error {
	payload, err := c.fetch(method, path, body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, payload, "", "  "); err != nil {
		fmt.Println(strings.TrimSpace(string(payload)))
		return nil
	}
	fmt.Println(pretty.String())
	return nil
}

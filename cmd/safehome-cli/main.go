// Command safehome-cli talks to a running safehome-hub over its HTTP API:
// inspect devices and routines, submit routine specs, manage the routine
// bank, and tail the activity log.
//
// Usage:
//
//	safehome-cli -hub http://127.0.0.1:8123 status
//	safehome-cli devices
//	safehome-cli routines
//	safehome-cli submit routine.json
//	safehome-cli store routine.json
//	safehome-cli trigger evening-routine
//	safehome-cli events
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	hubURL := flag.String("hub", "http://127.0.0.1:8123", "base URL of the safehome-hub API")
	timeout := flag.Duration("timeout", 5*time.Second, "HTTP request timeout")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := &client{base: strings.TrimRight(*hubURL, "/"), http: &http.Client{Timeout: *timeout}}

	var err error
	switch args[0] {
	case "status":
		err = cli.printJSON("GET", "/api/status", nil)
	case "devices":
		err = cli.printJSON("GET", "/api/devices", nil)
	case "routines":
		err = cli.printJSON("GET", "/api/routines", nil)
	case "routine":
		if len(args) < 2 {
			err = fmt.Errorf("usage: safehome-cli routine <id>")
			break
		}
		err = cli.printJSON("GET", "/api/routines/"+args[1], nil)
	case "submit":
		err = cli.postFile(args[1:], "/api/routines")
	case "store":
		err = cli.postFile(args[1:], "/api/bank")
	case "bank":
		err = cli.printJSON("GET", "/api/bank", nil)
	case "trigger":
		if len(args) < 2 {
			err = fmt.Errorf("usage: safehome-cli trigger <name>")
			break
		}
		err = cli.printJSON("POST", "/api/bank/"+args[1]+"/trigger", nil)
	case "events":
		err = cli.printJSON("GET", "/api/events", nil)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "safehome-cli: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: safehome-cli [-hub URL] <command>

commands:
  status              hub summary
  devices             device states and liveness
  routines            all routine results
  routine <id>        one routine result
  submit <spec.json>  submit a routine for execution
  store <spec.json>   save a routine definition in the bank
  bank                list stored routine names
  trigger <name>      dispatch a stored routine
  events              recent controller events`)
}

type client struct {
	base string
	http *http.Client
}

func (c *client) postFile(args []string, path string) error {
	if len(args) < 1 {
		return fmt.Errorf("a routine spec file is required")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	return c.printJSON("POST", path, data)
}

func (c *client) printJSON(method, path string, body []byte) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, payload, "", "  "); err != nil {
		fmt.Println(strings.TrimSpace(string(payload)))
		return nil
	}
	fmt.Println(pretty.String())
	return nil
}

// Command safehome-bench regenerates the paper's evaluation figures and
// tables (§7) from the workload-driven emulation and prints them as plain
// text. It also records the scheduling-hot-path micro-benchmark suite
// (internal/schedbench) to a JSON trajectory file, so the repository keeps a
// perf history alongside the code.
//
// Usage:
//
//	safehome-bench -list
//	safehome-bench -experiment fig12a -trials 20
//	safehome-bench -experiment all -quick
//	safehome-bench -out BENCH_schedhot.json            # record ns/op + allocs/op
//	safehome-bench -out BENCH_schedhot.json -benchtime 2s
//	safehome-bench -experiment fig15d -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"safehome/internal/experiments"
	"safehome/internal/schedbench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (see -list), or 'all'")
		trials     = flag.Int("trials", 0, "trials per data point (0 = per-experiment default)")
		seed       = flag.Int64("seed", 1, "base random seed")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		list       = flag.Bool("list", false, "list available experiments and exit")
		out        = flag.String("out", "", "run the scheduling-hot-path benchmarks and write ns/op + allocs/op JSON to this file (skips experiments)")
		benchtime  = flag.Duration("benchtime", time.Second, "target run time per benchmark in -out mode")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-18s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}()

	if *out != "" {
		if err := runBenchSuite(*out, *benchtime); err != nil {
			fatalf("bench: %v", err)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick}
	var selected []experiments.Experiment
	if strings.EqualFold(*experiment, "all") {
		selected = experiments.All()
	} else {
		exp, ok := experiments.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list to see options\n", *experiment)
			os.Exit(2)
		}
		selected = []experiments.Experiment{exp}
	}

	for _, exp := range selected {
		start := time.Now()
		fmt.Printf("### %s (%s) — %s\n\n", exp.Paper, exp.ID, exp.Description)
		for _, tab := range exp.Run(opts) {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s regenerated in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
}

// benchRecord is one benchmark's stats in the JSON trajectory file.
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchFile is the schema of BENCH_schedhot.json.
type benchFile struct {
	Schema     string        `json:"schema"`
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// runBenchSuite executes the scheduling-hot-path suite via testing.Benchmark
// and writes the JSON trajectory file. When the output file already holds a
// previous run (the committed baseline), it prints a benchstat-style delta
// table against it before overwriting.
func runBenchSuite(path string, benchtime time.Duration) error {
	// testing.Benchmark honours the -test.benchtime flag; register the
	// testing flags and set it explicitly so the suite is usable from a
	// plain binary.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}
	baseline := readBaseline(path)
	file := benchFile{
		Schema:     "safehome-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range schedbench.Cases() {
		fmt.Fprintf(os.Stderr, "running %-44s ", c.Name)
		runtime.GC() // start each case from a settled heap
		res := testing.Benchmark(c.Fn)
		rec := benchRecord{
			Name:        c.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		for name, v := range res.Extra {
			if rec.Extra == nil {
				rec.Extra = make(map[string]float64)
			}
			rec.Extra[name] = v
		}
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %6d allocs/op\n", rec.NsPerOp, rec.AllocsPerOp)
		file.Benchmarks = append(file.Benchmarks, rec)
	}
	printDelta(baseline, file.Benchmarks)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(file.Benchmarks), path)
	return nil
}

// readBaseline loads the previous trajectory file at path, if any.
func readBaseline(path string) map[string]benchRecord {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev benchFile
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "ignoring unreadable baseline %s: %v\n", path, err)
		return nil
	}
	out := make(map[string]benchRecord, len(prev.Benchmarks))
	for _, rec := range prev.Benchmarks {
		out[rec.Name] = rec
	}
	return out
}

// printDelta renders a benchstat-style old→new comparison against the
// committed baseline: ns/op and allocs/op with percentage deltas, one row
// per benchmark, plus new/retired rows.
func printDelta(baseline map[string]benchRecord, recs []benchRecord) {
	if len(baseline) == 0 {
		return
	}
	fmt.Printf("\n%-46s %12s %12s %8s  %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		seen[rec.Name] = true
		old, ok := baseline[rec.Name]
		if !ok {
			fmt.Printf("%-46s %12s %12.0f %8s  %10s %10d\n",
				rec.Name, "-", rec.NsPerOp, "new", "-", rec.AllocsPerOp)
			continue
		}
		delta := "~"
		if old.NsPerOp > 0 {
			pct := (rec.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			delta = fmt.Sprintf("%+.1f%%", pct)
		}
		fmt.Printf("%-46s %12.0f %12.0f %8s  %10d %10d\n",
			rec.Name, old.NsPerOp, rec.NsPerOp, delta, old.AllocsPerOp, rec.AllocsPerOp)
	}
	for name := range baseline {
		if !seen[name] {
			fmt.Printf("%-46s (retired)\n", name)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Command safehome-bench regenerates the paper's evaluation figures and
// tables (§7) from the workload-driven emulation and prints them as plain
// text.
//
// Usage:
//
//	safehome-bench -list
//	safehome-bench -experiment fig12a -trials 20
//	safehome-bench -experiment all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"safehome/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (see -list), or 'all'")
		trials     = flag.Int("trials", 0, "trials per data point (0 = per-experiment default)")
		seed       = flag.Int64("seed", 1, "base random seed")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		list       = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-18s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick}
	var selected []experiments.Experiment
	if strings.EqualFold(*experiment, "all") {
		selected = experiments.All()
	} else {
		exp, ok := experiments.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list to see options\n", *experiment)
			os.Exit(2)
		}
		selected = []experiments.Experiment{exp}
	}

	for _, exp := range selected {
		start := time.Now()
		fmt.Printf("### %s (%s) — %s\n\n", exp.Paper, exp.ID, exp.Description)
		for _, tab := range exp.Run(opts) {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s regenerated in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
}

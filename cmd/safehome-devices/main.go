// Command safehome-devices runs the emulated smart-plug fleet: a TCP endpoint
// speaking the TP-Link Kasa-style protocol, backed by in-memory devices. It
// is the stand-in for the physical plugs of the paper's deployment and the
// natural peer of the safehome-hub binary.
//
// Usage:
//
//	safehome-devices -listen 127.0.0.1:9999 -plugs 10
//	safehome-devices -plugs 5 -chaos 10s     # randomly fail/restore devices
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safehome/internal/device"
	"safehome/internal/kasa"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9999", "address to serve the Kasa protocol on")
		plugs   = flag.Int("plugs", 10, "number of emulated smart plugs (plug-0..plug-N-1)")
		chaos   = flag.Duration("chaos", 0, "if set, randomly fail and restore one device at this period")
		seed    = flag.Int64("seed", time.Now().UnixNano(), "seed for chaos injection")
		verbose = flag.Bool("verbose", false, "log every protocol exchange")
	)
	flag.Parse()

	if *plugs <= 0 {
		log.Fatal("safehome-devices: -plugs must be positive")
	}
	reg := device.Plugs(*plugs)
	fleet := device.NewFleet(reg)
	em := kasa.NewEmulator(fleet)
	if *verbose {
		em.Logf = log.Printf
	}

	addr, err := em.Start(*listen)
	if err != nil {
		log.Fatalf("safehome-devices: %v", err)
	}
	defer em.Close()

	fmt.Printf("emulating %d smart plugs on %s\n", *plugs, addr)
	for _, info := range reg.All() {
		fmt.Printf("  %-10s %-6s initial=%s\n", info.ID, info.Kind, info.Initial)
	}

	stopChaos := make(chan struct{})
	if *chaos > 0 {
		go runChaos(fleet, reg.IDs(), *chaos, *seed, stopChaos)
		fmt.Printf("chaos mode: failing/restoring a random device every %v\n", *chaos)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopChaos)
	fmt.Println("shutting down")
}

// runChaos alternately fails and restores randomly chosen devices, so the
// hub's failure detector and abort/rollback paths can be exercised live.
func runChaos(fleet *device.Fleet, ids []device.ID, period time.Duration, seed int64, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	down := make(map[device.ID]bool)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			id := ids[rng.Intn(len(ids))]
			if down[id] {
				if err := fleet.Restore(id); err == nil {
					delete(down, id)
					log.Printf("chaos: restored %s", id)
				}
			} else {
				if err := fleet.Fail(id); err == nil {
					down[id] = true
					log.Printf("chaos: failed %s", id)
				}
			}
		}
	}
}

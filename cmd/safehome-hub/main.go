// Command safehome-hub runs the SafeHome edge hub (Fig 11): the concurrency
// controller for the chosen visibility model, the routine bank and
// dispatcher, the failure detector, and an HTTP API for users and triggers.
//
// Devices are controlled either through the Kasa TCP driver (point -devices
// at a safehome-devices emulator or at real plugs) or, with -fleet, through
// an in-process simulated fleet — handy for a single-binary demo.
//
// Usage:
//
//	safehome-hub -listen :8123 -model EV -scheduler TL -devices 127.0.0.1:9999 -plugs 10
//	safehome-hub -listen :8123 -fleet -plugs 5
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"safehome/internal/device"
	"safehome/internal/hub"
	"safehome/internal/kasa"
	"safehome/internal/visibility"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8123", "address to serve the hub HTTP API on")
		modelName = flag.String("model", "EV", "visibility model: WV, GSV, S-GSV, PSV or EV")
		schedName = flag.String("scheduler", "TL", "EV scheduling policy: FCFS, JiT or TL")
		devices   = flag.String("devices", "", "address of a Kasa endpoint (safehome-devices or a real plug)")
		useFleet  = flag.Bool("fleet", false, "use an in-process simulated fleet instead of networked devices")
		plugs     = flag.Int("plugs", 10, "number of plug devices to manage (plug-0..plug-N-1)")
		probe     = flag.Duration("probe", time.Second, "failure detector probe period")
	)
	flag.Parse()

	model, err := visibility.ParseModel(*modelName)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	sched, err := visibility.ParseScheduler(*schedName)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}

	reg := device.Plugs(*plugs)
	var actuator device.Actuator
	switch {
	case *useFleet:
		actuator = device.NewFleet(reg)
		log.Printf("controlling %d in-process simulated devices", *plugs)
	case *devices != "":
		actuator = kasa.NewSingleEndpointDriver(*devices, reg.IDs())
		log.Printf("controlling %d devices through Kasa endpoint %s", *plugs, *devices)
	default:
		log.Fatal("safehome-hub: either -devices or -fleet is required")
	}

	h, err := hub.New(hub.Config{Model: model, Scheduler: sched, FailureInterval: *probe}, reg, actuator)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	h.Start()
	defer h.Close()

	fmt.Printf("SafeHome hub: model=%s scheduler=%s devices=%d\n", model, sched, reg.Len())
	fmt.Printf("HTTP API on http://%s/api/status\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, h.Handler()))
}

// Command safehome-hub runs the SafeHome edge hub (Fig 11): the concurrency
// controller for the chosen visibility model, the routine bank and
// dispatcher, the failure detector, and an HTTP API for users and triggers.
//
// Devices are controlled either through the Kasa TCP driver (point -devices
// at a safehome-devices emulator or at real plugs) or, with -fleet, through
// an in-process simulated fleet — handy for a single-binary demo.
//
// With -homes N the binary instead runs the multi-tenant HomeManager: N
// independent simulated homes partitioned across -shards worker shards, each
// with its own visibility controller and fleet, served through the
// home-scoped API (`/homes/{id}/...`).
//
// Every home — single or multi-tenant — runs behind a bounded typed-op
// mailbox (-mailbox depth, -batch drain size); when a home's mailbox is
// full, mutating requests are answered with 429 Too Many Requests instead of
// queuing without bound.
//
// With -data the hub journals every home; -durability picks the tier: sync
// (fsync per commit — the single-home default), group (all of a shard's
// homes coalesce into one shared fsync cycle — the -homes default, which is
// what keeps fsync traffic and open fds O(shards) at high tenant counts),
// or async (acknowledge ahead of the disk behind a bounded loss window).
//
// Usage:
//
//	safehome-hub -listen :8123 -model EV -scheduler TL -devices 127.0.0.1:9999 -plugs 10
//	safehome-hub -listen :8123 -fleet -plugs 5
//	safehome-hub -listen :8123 -homes 1000 -shards 8 -plugs 5
//	safehome-hub -listen :8123 -homes 1000 -shards 8 -data /var/lib/safehome -durability group
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"safehome/internal/device"
	"safehome/internal/hub"
	"safehome/internal/journal"
	"safehome/internal/kasa"
	"safehome/internal/manager"
	"safehome/internal/runtime"
	"safehome/internal/visibility"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:8123", "address to serve the hub HTTP API on")
		modelName      = flag.String("model", "EV", "visibility model: WV, GSV, S-GSV, PSV or EV")
		schedName      = flag.String("scheduler", "TL", "EV scheduling policy: FCFS, JiT or TL")
		devices        = flag.String("devices", "", "address of a Kasa endpoint (safehome-devices or a real plug)")
		useFleet       = flag.Bool("fleet", false, "use an in-process simulated fleet instead of networked devices")
		plugs          = flag.Int("plugs", 10, "number of plug devices per home (plug-0..plug-N-1)")
		probe          = flag.Duration("probe", time.Second, "failure detector probe period")
		homes          = flag.Int("homes", 0, "multi-tenant mode: number of homes to manage (0 = single-home hub)")
		shards         = flag.Int("shards", 4, "multi-tenant mode: number of worker shards")
		mailbox        = flag.Int("mailbox", 0, "per-home operation-mailbox depth (0 = default 128); a full mailbox answers 429")
		batch          = flag.Int("batch", 0, "max operations a home drains per loop wakeup (0 = default 32)")
		readMode       = flag.String("consistency", "snapshot", "read consistency: snapshot (reads never touch the mailbox) or linearizable")
		eventLog       = flag.Int("eventlog", 0, "multi-tenant mode: per-home event-log cap (0 disables /homes/{id}/events)")
		dataDir        = flag.String("data", "", "data directory for the write-ahead journal; empty runs memory-only. A hub restarted with the same -data recovers results, committed states and event cursors, and aborts routines that were in flight")
		durabilityName = flag.String("durability", "", "journal durability tier with -data: sync (fsync per commit; single-home default), group (cross-home coalesced fsync; multi-tenant default), or async (ack ahead of the disk, bounded loss window)")
		hibernate      = flag.Duration("hibernate-after", 0, "multi-tenant mode with -data: freeze homes idle this long to a final checkpoint and release their runtime; any API touch reanimates them and scheduled triggers still fire on time (0 disables)")
	)
	flag.Parse()

	model, err := visibility.ParseModel(*modelName)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	sched, err := visibility.ParseScheduler(*schedName)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	consistency, err := runtime.ParseReadConsistency(*readMode)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	var jopts journal.Options
	if *durabilityName != "" {
		jopts.Mode, err = journal.ParseMode(*durabilityName)
		if err != nil {
			log.Fatalf("safehome-hub: %v", err)
		}
	}

	if *homes > 0 {
		// Manager mode runs simulated per-home fleets on live clocks; the
		// single-home device wiring does not apply.
		if *devices != "" || *useFleet {
			log.Fatal("safehome-hub: -devices/-fleet apply to single-home mode only; -homes manages in-process simulated fleets")
		}
		if *hibernate > 0 && *dataDir == "" {
			log.Fatal("safehome-hub: -hibernate-after needs -data: a frozen home is its final checkpoint")
		}
		serveManager(*listen, *homes, *shards, *plugs, *mailbox, *batch, *eventLog, *dataDir, jopts, *hibernate, model, sched, consistency)
		return
	}
	if *hibernate > 0 {
		log.Fatal("safehome-hub: -hibernate-after applies to multi-tenant mode (-homes) only")
	}

	reg := device.Plugs(*plugs)
	var actuator device.Actuator
	switch {
	case *useFleet:
		actuator = device.NewFleet(reg)
		log.Printf("controlling %d in-process simulated devices", *plugs)
	case *devices != "":
		actuator = kasa.NewSingleEndpointDriver(*devices, reg.IDs())
		log.Printf("controlling %d devices through Kasa endpoint %s", *plugs, *devices)
	default:
		log.Fatal("safehome-hub: either -devices or -fleet is required")
	}

	h, err := hub.New(hub.Config{Model: model, Scheduler: sched, FailureInterval: *probe,
		MailboxDepth: *mailbox, Batch: *batch, ReadConsistency: consistency,
		DataDir: *dataDir, Journal: jopts}, reg, actuator)
	if err != nil {
		log.Fatalf("safehome-hub: %v", err)
	}
	h.Start()
	defer h.Close()

	if *dataDir != "" {
		st := h.Status()
		log.Printf("durable hub: data dir %s durability=%s (recovered %d routines)", *dataDir, st.Durability, st.Routines)
	}
	fmt.Printf("SafeHome hub: model=%s scheduler=%s devices=%d\n", model, sched, reg.Len())
	fmt.Printf("HTTP API on http://%s/api/status\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, h.Handler()))
}

// serveManager runs the multi-tenant HomeManager: homes home-0..home-(N-1)
// on live clocks, partitioned across worker shards, behind the /homes API.
func serveManager(listen string, homes, shards, plugs, mailbox, batch, eventLog int,
	dataDir string, jopts journal.Options, hibernate time.Duration,
	model visibility.Model, sched visibility.SchedulerKind, consistency runtime.ReadConsistency) {
	m := manager.New(manager.Config{
		Shards:          shards,
		QueueDepth:      mailbox,
		Batch:           batch,
		Clock:           manager.ClockLive,
		ReadConsistency: consistency,
		EventLog:        eventLog,
		DataDir:         dataDir,
		Journal:         jopts,
		HibernateAfter:  hibernate,
		Home: manager.HomeConfig{
			Model:      model,
			ExplicitWV: model == visibility.WV,
			Scheduler:  sched,
		},
	})
	// A durable manager rediscovers every persisted home before creating the
	// startup fleet; homes that already exist on disk are recovered, not
	// recreated.
	if recovered, err := m.RecoverHomes(); err != nil {
		log.Fatalf("safehome-hub: recovering homes: %v", err)
	} else if len(recovered) > 0 {
		log.Printf("recovered %d homes from %s", len(recovered), dataDir)
	}
	for i := 0; i < homes; i++ {
		id := manager.HomeID(fmt.Sprintf("home-%d", i))
		if err := m.AddHome(id, device.Plugs(plugs).All()...); err != nil && !errors.Is(err, manager.ErrDuplicateHome) {
			log.Fatalf("safehome-hub: creating home %s: %v", id, err)
		}
	}
	fmt.Printf("SafeHome multi-tenant hub: model=%s scheduler=%s homes=%d shards=%d plugs/home=%d\n",
		model, sched, homes, shards, plugs)
	fmt.Printf("HTTP API on http://%s/api/status (home-scoped: /homes/home-0/...)\n", listen)
	log.Fatal(http.ListenAndServe(listen, hub.ManagerHandler(m, plugs)))
}

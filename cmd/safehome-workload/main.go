// Command safehome-workload drives the generative scenario engine from the
// command line: property-based sweeps of generated homes against the
// congruence and weak-ordering oracles (with automatic shrinking of failing
// seeds), trace record/replay with a byte-identity check, and the
// kill/recover drill family against a journaled home.
//
// Usage:
//
//	safehome-workload sweep -seeds 50 -devices 120 -routines 150
//	safehome-workload sweep -seed 0                 # random base seed, logged
//	safehome-workload record -out run.trace.json -scheduler JiT
//	safehome-workload replay -in run.trace.json
//	safehome-workload drill
//	safehome-workload drill -points post-ack -acked 4,16,64,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"safehome/internal/harness"
	"safehome/internal/journal"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "sweep":
		err = sweepCmd(args[1:])
	case "record":
		err = recordCmd(args[1:])
	case "replay":
		err = replayCmd(args[1:])
	case "drill":
		err = drillCmd(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "safehome-workload: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: safehome-workload <command>

commands:
  sweep        generate homes and verify every controller against the oracles
      -seeds N          number of consecutive seeds (default 50)
      -seed N           base seed; 0 draws a random one and logs it (default 1000)
      -devices N        fleet size (default 120)
      -routines N       routines per home (default 150)
      -schedulers CSV   EV schedulers to test (default TL,FCFS,JiT)
      -failed-pct P     percentage of devices that fail-stop (default 0)
      -restart-pct P    percentage of failed devices that restart (default 0)
      -flap-pct P       percentage of failing devices that flap (default 0)
      -panic-pct P      percentage of seeds that inject a mid-run panic (default 0)
      -idle-pct P       percentage of homes that never resubmit after their
                        setup burst; each idle home also runs the hibernation
                        freeze/wake oracle (default 0)
      -no-shrink        skip minimizing failing seeds
  record       run one generated home and write its trace
      -out FILE         trace file to write (required)
      -seed N           generator seed (default 1)
      -devices N        fleet size (default 40)
      -routines N       routines (default 60)
      -scheduler S      EV scheduler (default TL)
      -jitter D         per-command latency jitter bound (default 100ms)
  replay       replay a trace through a fresh home and byte-compare streams
      -in FILE          trace file to check (required)
  drill        crash a journaled home and verify the durability contract
      -points CSV       crash points (default all: post-ack,in-flight,mid-batch,
                        mid-checkpoint,crash-panic,mid-freeze,post-freeze)
      -acked CSV        tail-length sweep: acked-batch sizes with checkpoints
                        disabled (default 4,16,64)
      -seed N           routine-generation seed (default 1)
      -dir DIR          journal directory (default: fresh temp dir)
      -no-flap          skip the device-flap and journal-flap drills`)
}

func parseSchedulers(csv string) ([]visibility.SchedulerKind, error) {
	var out []visibility.SchedulerKind
	for _, s := range strings.Split(csv, ",") {
		k, err := visibility.ParseScheduler(s)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func sweepCmd(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	seeds := fs.Int("seeds", 50, "number of consecutive seeds")
	seed := fs.Int64("seed", 1000, "base seed (0 = random, logged)")
	devices := fs.Int("devices", 120, "fleet size")
	routines := fs.Int("routines", 150, "routines per home")
	scheds := fs.String("schedulers", "TL,FCFS,JiT", "schedulers to test")
	failedPct := fs.Float64("failed-pct", 0, "percentage of devices that fail-stop")
	restartPct := fs.Float64("restart-pct", 0, "percentage of failed devices that restart")
	flapPct := fs.Float64("flap-pct", 0, "percentage of failing devices that flap (fail/restart cycles)")
	panicPct := fs.Float64("panic-pct", 0, "percentage of seeds that inject a mid-run controller panic")
	idlePct := fs.Float64("idle-pct", 0, "percentage of homes that never resubmit after their setup burst")
	noShrink := fs.Bool("no-shrink", false, "skip minimizing failing seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds, err := parseSchedulers(*scheds)
	if err != nil {
		return err
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano() % 1_000_000_000
	}
	p := harness.SweepParams{
		Params:     workload.DefaultGenParams(),
		Seeds:      *seeds,
		Schedulers: kinds,
		NoShrink:   *noShrink,
	}
	p.Params.Seed = *seed
	p.Params.Devices = *devices
	p.Params.Routines = *routines
	p.Params.FailedPct = *failedPct
	p.Params.RestartPct = *restartPct
	p.Params.FlapPct = *flapPct
	p.Params.PanicPct = *panicPct
	p.Params.IdlePct = *idlePct

	fmt.Printf("sweep: seeds %d..%d, %d devices, %d routines, schedulers %s\n",
		*seed, *seed+int64(*seeds)-1, *devices, *routines, *scheds)
	start := time.Now()
	res := harness.Sweep(p)
	fmt.Printf("%d runs, %d routine executions in %v\n",
		res.Runs, res.Routines, time.Since(start).Round(time.Millisecond))
	if res.IdleHomes > 0 {
		fmt.Printf("%d idle homes passed through the freeze/wake oracle\n", res.IdleHomes)
	}
	if len(res.Failures) == 0 {
		fmt.Println("all oracles passed")
		return nil
	}
	for _, f := range res.Failures {
		fmt.Printf("\nFAIL seed=%d scheduler=%v (%d violations)\n", f.Seed, f.Scheduler, len(f.Violations))
		for _, v := range f.Violations {
			fmt.Printf("  %v\n", v)
		}
		printMinimal(f)
	}
	return fmt.Errorf("%d of %d cells violated an oracle", len(res.Failures), res.Runs)
}

// printMinimal renders a failing cell's shrunk reproducer: every surviving
// submission, failure injection and the violations it still triggers.
func printMinimal(f harness.SweepFailure) {
	fmt.Printf("  minimal reproducer %q: %d devices, %d submissions, %d commands\n",
		f.Minimal.Name, len(f.Minimal.Devices), len(f.Minimal.Submissions), f.Minimal.TotalCommands())
	for _, sub := range f.Minimal.Submissions {
		fmt.Printf("    at %-10v user=%-8s %v\n", sub.At, sub.User, sub.Routine)
	}
	for _, fe := range f.Minimal.Failures {
		what := "fails"
		if fe.Restart {
			what = "restarts"
		}
		fmt.Printf("    at %-10v device %s %s\n", fe.At, fe.Device, what)
	}
	for _, v := range f.MinimalViolations {
		fmt.Printf("    still violates: %v\n", v)
	}
}

func recordCmd(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "", "trace file to write")
	seed := fs.Int64("seed", 1, "generator seed")
	devices := fs.Int("devices", 40, "fleet size")
	routines := fs.Int("routines", 60, "routines")
	sched := fs.String("scheduler", "TL", "EV scheduler")
	jitter := fs.Duration("jitter", 100*time.Millisecond, "per-command latency jitter bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	kind, err := visibility.ParseScheduler(*sched)
	if err != nil {
		return err
	}
	p := workload.DefaultGenParams()
	p.Seed = *seed
	p.Devices = *devices
	p.Routines = *routines
	spec := workload.Generate(p)
	spec.JitterMax = *jitter
	opts := visibility.DefaultOptions(visibility.EV)
	opts.Scheduler = kind
	tr, res := harness.Record(spec, opts, *seed)
	data, err := workload.EncodeTrace(tr)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %d routines (%v virtual time) to %s\n",
		len(tr.Events), len(res.Results), res.Elapsed, *out)
	return nil
}

func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	in := fs.String("in", "", "trace file to check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("replay: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	tr, err := workload.DecodeTrace(data)
	if err != nil {
		return err
	}
	if err := harness.CheckReplay(tr); err != nil {
		return err
	}
	fmt.Printf("replay of %q byte-identical: %d events under %s/%s\n",
		tr.Name, len(tr.Events), tr.Model, tr.Scheduler)
	return nil
}

func parseCrashPoints(csv string) ([]harness.CrashPoint, error) {
	all := map[string]harness.CrashPoint{
		"post-ack":       harness.CrashPostAck,
		"in-flight":      harness.CrashInFlight,
		"mid-batch":      harness.CrashMidBatch,
		"mid-checkpoint": harness.CrashMidCheckpoint,
		"crash-panic":    harness.CrashPanic,
		"mid-freeze":     harness.CrashMidFreeze,
		"post-freeze":    harness.CrashPostFreeze,
	}
	var out []harness.CrashPoint
	for _, s := range strings.Split(csv, ",") {
		p, ok := all[strings.TrimSpace(strings.ToLower(s))]
		if !ok {
			return nil, fmt.Errorf("unknown crash point %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

func drillCmd(args []string) error {
	fs := flag.NewFlagSet("drill", flag.ContinueOnError)
	points := fs.String("points", "post-ack,in-flight,mid-batch,mid-checkpoint,crash-panic,mid-freeze,post-freeze", "crash points")
	durabilities := fs.String("durability", "sync,group,async", "durability tiers to drill (async runs the post-ack point only, checking the bounded-loss contract)")
	acked := fs.String("acked", "4,16,64", "acked-batch sizes for the tail-length sweep")
	seed := fs.Int64("seed", 1, "routine-generation seed")
	dir := fs.String("dir", "", "journal directory (default: fresh temp dir)")
	noFlap := fs.Bool("no-flap", false, "skip the device-flap and journal-flap drills")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pts, err := parseCrashPoints(*points)
	if err != nil {
		return err
	}
	var modes []journal.Mode
	for _, s := range strings.Split(*durabilities, ",") {
		m, err := journal.ParseMode(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("drill: %w", err)
		}
		modes = append(modes, m)
	}
	root := *dir
	if root == "" {
		root, err = os.MkdirTemp("", "safehome-drill-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
	}

	bad := 0
	for _, mode := range modes {
		fmt.Printf("crash-point drills (durability=%v):\n", mode)
		run := pts
		if mode == journal.ModeAsync {
			// Async acknowledges ahead of the disk: exact-recovery crash
			// points do not apply, the post-ack bounded-loss drill does.
			run = []harness.CrashPoint{harness.CrashPostAck}
		}
		for i, pt := range run {
			rep, err := harness.RunDrill(harness.DrillParams{
				Dir:     fmt.Sprintf("%s/%v-point-%d", root, mode, i),
				Point:   pt,
				Seed:    *seed + int64(i),
				Journal: journal.Options{Mode: mode},
			})
			if err != nil {
				return fmt.Errorf("drill %v/%v: %w", mode, pt, err)
			}
			fmt.Printf("  %v\n", rep)
			if mode == journal.ModeAsync {
				fmt.Printf("  %-14s lost=%d bytes (window %d)\n", "", rep.LostBytes, journal.DefaultAsyncWindowBytes)
			}
			for _, v := range rep.Violations {
				bad++
				fmt.Printf("    VIOLATION %v\n", v)
			}
		}
	}

	fmt.Println("recovery time vs journal tail (checkpoints disabled):")
	fmt.Printf("  %-8s %-12s %-12s\n", "acked", "tail-bytes", "recovery")
	for i, s := range strings.Split(*acked, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("drill: bad -acked entry %q", s)
		}
		rep, err := harness.RunDrill(harness.DrillParams{
			Dir:     fmt.Sprintf("%s/tail-%d", root, i),
			Point:   harness.CrashPostAck,
			Acked:   n,
			Seed:    *seed + 100 + int64(i),
			Journal: journal.Options{CheckpointBytes: 1 << 30},
		})
		if err != nil {
			return fmt.Errorf("drill acked=%d: %w", n, err)
		}
		fmt.Printf("  %-8d %-12d %-12v\n", rep.Acked, rep.TailBytes, rep.RecoveryTime)
		for _, v := range rep.Violations {
			bad++
			fmt.Printf("    VIOLATION %v\n", v)
		}
	}
	if !*noFlap {
		fmt.Println("device-flap drill (actuation breaker + failure detector):")
		fr, err := harness.RunFlapDrill()
		if err != nil {
			return fmt.Errorf("flap drill: %w", err)
		}
		fmt.Printf("  %v\n", fr)
		for _, v := range fr.Violations {
			bad++
			fmt.Printf("    VIOLATION %v\n", v)
		}

		fmt.Println("journal-flap drill (durable home degrades to memory-only):")
		jr, err := harness.RunJournalFlapDrill(fmt.Sprintf("%s/journal-flap", root))
		if err != nil {
			return fmt.Errorf("journal-flap drill: %w", err)
		}
		fmt.Printf("  %v\n", jr)
		for _, v := range jr.Violations {
			bad++
			fmt.Printf("    VIOLATION %v\n", v)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d durability violations", bad)
	}
	fmt.Println("all drills passed")
	return nil
}

package safehome

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"safehome/internal/device"
	"safehome/internal/hub"
	"safehome/internal/journal"
	"safehome/internal/sim"
	"safehome/internal/visibility"
)

// Config selects the visibility model and tuning knobs of a home.
type Config struct {
	// Model is the visibility model to enforce. The zero value is WV (the
	// status-quo model); most users want EV.
	Model Model
	// Scheduler is the EV scheduling policy (default: Timeline).
	Scheduler SchedulerKind
	// DisablePreLease / DisablePostLease turn off lock leasing (EV only);
	// both enabled by default.
	DisablePreLease  bool
	DisablePostLease bool
	// DefaultShortCommand is the assumed exclusive-hold duration of commands
	// with no explicit duration (default 100 ms, the paper's τ_timeout).
	DefaultShortCommand time.Duration
	// ActuationLatency adds a fixed per-command latency in simulated homes,
	// modelling device/network round trips.
	ActuationLatency time.Duration
	// FailureDetectionInterval is the probe period of a live home's failure
	// detector (default 1 s).
	FailureDetectionInterval time.Duration
	// MailboxDepth bounds a live home's operation mailbox (default 128).
	// When the mailbox is full, mutating calls return ErrOverloaded instead
	// of blocking.
	MailboxDepth int
	// MailboxBatch is the maximum operations a live home drains per loop
	// wakeup (default 32), amortizing channel signaling under load.
	MailboxBatch int
	// ReadConsistency selects how a live home answers read-only calls
	// (Results, Status, Devices, Events). The default, ReadSnapshot, reads
	// the home loop's latest published snapshot: reads are lock-free, cost
	// the loop nothing, and a caller always observes its own completed
	// mutations. ReadLinearizable serializes every read through the home's
	// mailbox instead — pick it only when a read must reflect mutations
	// completed concurrently by other callers. Simulated homes are
	// single-threaded and unaffected.
	ReadConsistency ReadConsistency
	// DataDir makes a live home durable: accepted routines, outcomes,
	// committed device states and event sequence numbers are group-committed
	// to a write-ahead journal under this directory, and a home restarted
	// with the same directory recovers them exactly — routines in flight at
	// the crash are aborted with rollback, per the paper's failure
	// semantics. Empty (the default) keeps the home memory-only. Simulated
	// homes ignore it.
	DataDir string
	// Durability selects the journal's durability tier when DataDir is set:
	// "sync" (the default — every acknowledgement is preceded by its own
	// fsync), "group" (commits ride a shared writer's coalesced fsync
	// cycle; same acknowledged ⇒ durable contract, fewer syncs), or
	// "async" (acknowledge ahead of the disk; a crash may lose the last
	// ~256 KiB of acknowledged work, but never reorders it). Unknown values
	// fail NewLiveHome.
	Durability string
	// Observer, if set, receives every controller event.
	Observer Observer
}

// ReadConsistency selects how a live home answers read-only calls; see
// Config.ReadConsistency.
type ReadConsistency = hub.ReadConsistency

// Read-consistency modes.
const (
	// ReadSnapshot answers reads from the home loop's latest published
	// snapshot (the default: reads never touch the home's mailbox).
	ReadSnapshot = hub.ReadSnapshot
	// ReadLinearizable serializes reads through the home's mailbox.
	ReadLinearizable = hub.ReadLinearizable
)

func (c Config) options() visibility.Options {
	opts := visibility.DefaultOptions(c.Model)
	opts.Scheduler = c.Scheduler
	opts.PreLease = !c.DisablePreLease
	opts.PostLease = !c.DisablePostLease
	if c.DefaultShortCommand > 0 {
		opts.DefaultShort = c.DefaultShortCommand
	}
	opts.Observer = c.Observer
	return opts
}

// --- simulated home -------------------------------------------------------------

// SimulatedHome runs SafeHome over an in-memory device fleet on a virtual
// clock. Submissions, failures and restarts are scheduled at virtual-time
// offsets; Run drains the event queue and returns how much virtual time
// passed. SimulatedHome is not safe for concurrent use.
type SimulatedHome struct {
	cfg   Config
	sim   *sim.Sim
	fleet *Fleet
	ctrl  visibility.Controller
}

// NewSimulatedHome builds a simulated home over the given devices.
func NewSimulatedHome(cfg Config, devices ...DeviceInfo) (*SimulatedHome, error) {
	if len(devices) == 0 {
		return nil, errors.New("safehome: a home needs at least one device")
	}
	fleet := NewFleet(devices...)
	s := sim.NewAtEpoch()
	env := visibility.NewSimEnv(s, fleet)
	env.ActuationLatency = cfg.ActuationLatency
	h := &SimulatedHome{cfg: cfg, sim: s, fleet: fleet}
	h.ctrl = visibility.New(env, fleet.Snapshot(), cfg.options())
	return h, nil
}

// Now returns the current virtual time.
func (h *SimulatedHome) Now() time.Time { return h.sim.Now() }

// Submit submits a routine for execution at the current virtual time.
func (h *SimulatedHome) Submit(r *Routine) (RoutineID, error) {
	if err := r.Validate(nil); err != nil {
		return 0, err
	}
	return h.ctrl.Submit(r), nil
}

// SubmitAfter schedules a routine submission after the given virtual delay.
func (h *SimulatedHome) SubmitAfter(d time.Duration, r *Routine) error {
	if err := r.Validate(nil); err != nil {
		return err
	}
	h.sim.After(d, func() { h.ctrl.Submit(r) })
	return nil
}

// FailDeviceAfter injects a fail-stop failure of the device after the given
// virtual delay; RestoreDeviceAfter injects the matching restart.
func (h *SimulatedHome) FailDeviceAfter(d time.Duration, id DeviceID) {
	h.sim.After(d, func() {
		if err := h.fleet.Fail(id); err == nil {
			h.ctrl.NotifyFailure(id)
		}
	})
}

// RestoreDeviceAfter injects a device restart after the given virtual delay.
func (h *SimulatedHome) RestoreDeviceAfter(d time.Duration, id DeviceID) {
	h.sim.After(d, func() {
		if err := h.fleet.Restore(id); err == nil {
			h.ctrl.NotifyRestart(id)
		}
	})
}

// Run drains the simulation (all submitted routines finish) and returns the
// virtual time that elapsed.
func (h *SimulatedHome) Run() time.Duration {
	start := h.sim.Now()
	h.sim.Run()
	return h.sim.Now().Sub(start)
}

// RunFor advances the simulation by at most the given virtual duration.
func (h *SimulatedHome) RunFor(d time.Duration) {
	h.sim.RunUntil(h.sim.Now().Add(d))
}

// Results returns per-routine outcomes in submission order.
func (h *SimulatedHome) Results() []Result { return h.ctrl.Results() }

// Result returns one routine's outcome.
func (h *SimulatedHome) Result(id RoutineID) (Result, bool) { return h.ctrl.Result(id) }

// PendingCount returns the number of unfinished routines.
func (h *SimulatedHome) PendingCount() int { return h.ctrl.PendingCount() }

// DeviceStates returns the ground-truth state of every device.
func (h *SimulatedHome) DeviceStates() map[DeviceID]DeviceState { return h.fleet.Snapshot() }

// DeviceState returns one device's ground-truth state.
func (h *SimulatedHome) DeviceState(id DeviceID) DeviceState {
	st, _ := h.fleet.State(id)
	return st
}

// Fleet exposes the underlying simulated fleet (e.g. for custom failure
// drills or assertions in tests).
func (h *SimulatedHome) Fleet() *Fleet { return h.fleet }

// Model returns the home's visibility model.
func (h *SimulatedHome) Model() Model { return h.ctrl.Model() }

// --- live home -------------------------------------------------------------------

// DeviceStatus describes a device's state and liveness in a live home.
type DeviceStatus = hub.DeviceStatus

// HubStatus summarizes a live home.
type HubStatus = hub.Status

// LiveHome runs SafeHome in real time on an edge device: routines actuate
// devices through the provided Actuator (e.g. the Kasa driver), the failure
// detector probes devices periodically, and an HTTP API is available for
// users and triggers. LiveHome is safe for concurrent use: every operation
// is serialized through the home runtime's typed mailbox, and when the
// mailbox is full mutating calls return ErrOverloaded (back off and retry)
// instead of blocking indefinitely.
type LiveHome struct {
	hub *hub.Hub
}

// Admission-control errors returned by a live home's mutating calls.
var (
	// ErrOverloaded means the home's mailbox is full; back off and retry.
	ErrOverloaded = hub.ErrOverloaded
	// ErrHomeClosed means the home has been closed.
	ErrHomeClosed = hub.ErrClosed
)

// NewLiveHome builds a live home controlling the given devices through the
// actuator.
func NewLiveHome(cfg Config, actuator Actuator, devices ...DeviceInfo) (*LiveHome, error) {
	if actuator == nil {
		return nil, errors.New("safehome: live home needs an actuator")
	}
	var jopts journal.Options
	if cfg.Durability != "" {
		mode, err := journal.ParseMode(cfg.Durability)
		if err != nil {
			return nil, fmt.Errorf("safehome: %w", err)
		}
		jopts.Mode = mode
	}
	h, err := hub.New(hub.Config{
		Model:           cfg.Model,
		Scheduler:       cfg.Scheduler,
		DefaultShort:    cfg.DefaultShortCommand,
		FailureInterval: cfg.FailureDetectionInterval,
		MailboxDepth:    cfg.MailboxDepth,
		Batch:           cfg.MailboxBatch,
		ReadConsistency: cfg.ReadConsistency,
		DataDir:         cfg.DataDir,
		Journal:         jopts,
	}, NewRegistry(devices...), actuator)
	if err != nil {
		return nil, err
	}
	return &LiveHome{hub: h}, nil
}

// Start launches background activity (the failure detector).
func (h *LiveHome) Start() { h.hub.Start() }

// Close stops background activity and waits for in-flight commands.
func (h *LiveHome) Close() { h.hub.Close() }

// Crash kills the home without draining — no shutdown checkpoint, no waiting
// for in-flight routines; operations parked in the mailbox are answered
// ErrHomeClosed. It is the SIGKILL-equivalent for crash-recovery drills: a
// home running with Config.DataDir recovers all acknowledged work exactly
// when a new home reopens the same directory, and whatever was in flight at
// the crash comes back Aborted with rollback.
func (h *LiveHome) Crash() { h.hub.Crash() }

// Submit submits a routine for immediate execution.
func (h *LiveHome) Submit(r *Routine) (RoutineID, error) { return h.hub.SubmitRoutine(r) }

// Store saves a routine definition in the routine bank.
func (h *LiveHome) Store(r *Routine) error { return h.hub.StoreRoutine(r) }

// Trigger dispatches a stored routine by name.
func (h *LiveHome) Trigger(name string) (RoutineID, error) { return h.hub.Trigger(name) }

// TriggerHandle identifies a scheduled automation trigger.
type TriggerHandle = hub.TriggerHandle

// ScheduledTrigger describes one active automation trigger.
type ScheduledTrigger = hub.ScheduledTrigger

// ScheduleAfter dispatches a stored routine once after the delay (e.g. the
// paper's timed trash-night routine).
func (h *LiveHome) ScheduleAfter(name string, delay time.Duration) (TriggerHandle, error) {
	return h.hub.ScheduleAfter(name, delay)
}

// ScheduleEvery dispatches a stored routine repeatedly at the given interval.
func (h *LiveHome) ScheduleEvery(name string, interval time.Duration) (TriggerHandle, error) {
	return h.hub.ScheduleEvery(name, interval)
}

// CancelTrigger stops a scheduled trigger; it is not an error if the handle
// is unknown or already fired. It returns ErrOverloaded when the home's
// mailbox is full.
func (h *LiveHome) CancelTrigger(t TriggerHandle) error { return h.hub.CancelTrigger(t) }

// Triggers lists active scheduled triggers.
func (h *LiveHome) Triggers() []ScheduledTrigger { return h.hub.Triggers() }

// Results returns per-routine outcomes in submission order.
func (h *LiveHome) Results() []Result { return h.hub.Results() }

// Result returns one routine's outcome.
func (h *LiveHome) Result(id RoutineID) (Result, bool) { return h.hub.Result(id) }

// Devices reports every device's committed state and liveness.
func (h *LiveHome) Devices() []DeviceStatus { return h.hub.Devices() }

// Status summarizes the home.
func (h *LiveHome) Status() HubStatus { return h.hub.Status() }

// Events returns the recent controller activity log.
func (h *LiveHome) Events() []Event { return h.hub.Events() }

// EventsSince returns the retained events with sequence number >= since and
// the cursor to pass on the next call, so pollers fetch only the tail
// (mirrors the HTTP API's /api/events?since=N).
func (h *LiveHome) EventsSince(since uint64) ([]Event, uint64) {
	return h.hub.EventsSince(since)
}

// HTTPHandler returns the hub's HTTP API (see internal/hub for the routes).
func (h *LiveHome) HTTPHandler() http.Handler { return h.hub.Handler() }

// WaitIdle blocks until every submitted routine has finished or the timeout
// elapses.
func (h *LiveHome) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for h.hub.PendingCount() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("safehome: %d routines still pending after %v", h.hub.PendingCount(), timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// Plugs returns n generic smart-plug device descriptions (plug-0 .. plug-n-1),
// a convenient fleet for demos and tests.
func Plugs(n int) []DeviceInfo {
	return device.Plugs(n).All()
}

package safehome_test

import (
	"fmt"
	"time"

	"safehome"
)

// ExampleSimulatedHome runs two conflicting routines under Eventual
// Visibility on the virtual clock: the whole evening — a 40-minute
// dishwasher cycle included — takes microseconds of real time, and the end
// state matches some serial order of the two routines.
func ExampleSimulatedHome() {
	home, err := safehome.NewSimulatedHome(safehome.Config{Model: safehome.EV},
		safehome.DeviceInfo{ID: "dishwasher", Kind: "dishwasher", Initial: safehome.Off},
		safehome.DeviceInfo{ID: "water-heater", Kind: "heater", Initial: safehome.Off},
	)
	if err != nil {
		panic(err)
	}

	dishes := safehome.NewRoutine("dishes",
		safehome.Command{Device: "water-heater", Target: safehome.On},
		safehome.Command{Device: "dishwasher", Target: "WASH", Duration: 40 * time.Minute},
		safehome.Command{Device: "dishwasher", Target: safehome.Off},
		safehome.Command{Device: "water-heater", Target: safehome.Off},
	)
	shower := safehome.NewRoutine("shower",
		safehome.Command{Device: "water-heater", Target: safehome.On, Duration: 15 * time.Minute},
	)

	if _, err := home.Submit(dishes); err != nil {
		panic(err)
	}
	if err := home.SubmitAfter(5*time.Minute, shower); err != nil {
		panic(err)
	}
	elapsed := home.Run()

	for _, res := range home.Results() {
		fmt.Printf("%s: %s\n", res.Routine.Name, res.Status)
	}
	fmt.Printf("virtual time: %v\n", elapsed.Round(time.Minute))
	fmt.Printf("dishwasher=%s water-heater=%s\n",
		home.DeviceState("dishwasher"), home.DeviceState("water-heater"))
	// Output:
	// dishes: committed
	// shower: committed
	// virtual time: 55m0s
	// dishwasher=OFF water-heater=ON
}

// ExampleLiveHome drives an in-memory device fleet in real time: commands
// hold their devices for their real duration, so the example keeps them at
// the default (instantaneous) length and waits for the routine to finish.
func ExampleLiveHome() {
	devices := safehome.Plugs(2)
	fleet := safehome.NewFleet(devices...)
	home, err := safehome.NewLiveHome(safehome.Config{
		Model:               safehome.EV,
		DefaultShortCommand: time.Millisecond,
	}, fleet, devices...)
	if err != nil {
		panic(err)
	}
	home.Start()
	defer home.Close()

	lights := safehome.NewRoutine("lights-on",
		safehome.Command{Device: "plug-0", Target: safehome.On},
		safehome.Command{Device: "plug-1", Target: safehome.On},
	)
	id, err := home.Submit(lights)
	if err != nil {
		panic(err)
	}
	if err := home.WaitIdle(5 * time.Second); err != nil {
		panic(err)
	}

	res, _ := home.Result(id)
	fmt.Printf("%s: %s\n", res.Routine.Name, res.Status)
	for _, d := range home.Devices() {
		fmt.Printf("%s=%s up=%v\n", d.Info.ID, d.State, d.Up)
	}
	// Output:
	// lights-on: committed
	// plug-0=ON up=true
	// plug-1=ON up=true
}

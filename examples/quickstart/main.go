// Quickstart: two members of a household trigger the same "breakfast"
// routine at the same time. Under Eventual Visibility SafeHome pipelines the
// two routines (one user's pancakes overlap the other's coffee) and the end
// state is exactly what a serial execution would produce; under Global Strict
// Visibility the second user waits for the first to finish.
package main

import (
	"fmt"
	"time"

	"safehome"
)

func breakfast(user string) *safehome.Routine {
	return safehome.NewRoutine("breakfast-"+user,
		safehome.Command{Device: "coffee-maker", Target: "BREW", Duration: 4 * time.Minute},
		safehome.Command{Device: "coffee-maker", Target: safehome.Off},
		safehome.Command{Device: "pancake-maker", Target: "COOK", Duration: 5 * time.Minute},
		safehome.Command{Device: "pancake-maker", Target: safehome.Off},
	)
}

func kitchen() []safehome.DeviceInfo {
	return []safehome.DeviceInfo{
		{ID: "coffee-maker", Kind: "coffee-maker", Initial: safehome.Off},
		{ID: "pancake-maker", Kind: "pancake-maker", Initial: safehome.Off},
	}
}

func runUnder(model safehome.Model) {
	home, err := safehome.NewSimulatedHome(safehome.Config{Model: model}, kitchen()...)
	if err != nil {
		panic(err)
	}
	if _, err := home.Submit(breakfast("alice")); err != nil {
		panic(err)
	}
	if _, err := home.Submit(breakfast("bob")); err != nil {
		panic(err)
	}
	elapsed := home.Run()

	fmt.Printf("--- %s ---\n", model)
	fmt.Printf("both breakfasts done after %v (virtual time)\n", elapsed.Round(time.Second))
	for _, res := range home.Results() {
		fmt.Printf("  %-16s %-10s latency=%v\n",
			res.Routine.Name, res.Status, res.Latency().Round(time.Second))
	}
	fmt.Printf("  end state: coffee-maker=%s pancake-maker=%s\n\n",
		home.DeviceState("coffee-maker"), home.DeviceState("pancake-maker"))
}

func main() {
	fmt.Println("SafeHome quickstart: two concurrent breakfast routines")
	fmt.Println()
	runUnder(safehome.EV)  // pipelined: ~14 minutes
	runUnder(safehome.GSV) // serialized: ~18 minutes
}

// Live hub: an end-to-end run of the real-time path — an in-process emulated
// TP-Link-style plug fleet served over TCP, the Kasa driver, a LiveHome
// running Eventual Visibility with its failure detector, and the hub HTTP
// API. A plug is killed mid-run to show live failure detection, abort and
// rollback.
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"safehome"
)

func main() {
	// 1. A fleet of five emulated smart plugs served over the Kasa protocol.
	devices := safehome.Plugs(5)
	emulator := safehome.NewKasaEmulator(devices...)
	addr, err := emulator.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer emulator.Close()
	fmt.Printf("emulated plug fleet listening on %s\n", addr)

	// 2. A live SafeHome hub controlling those plugs through the network driver.
	ids := make([]safehome.DeviceID, len(devices))
	for i, d := range devices {
		ids[i] = d.ID
	}
	driver := safehome.NewKasaEmulatorDriver(addr, ids)
	home, err := safehome.NewLiveHome(safehome.Config{
		Model:                    safehome.EV,
		DefaultShortCommand:      50 * time.Millisecond,
		FailureDetectionInterval: 100 * time.Millisecond,
	}, driver, devices...)
	if err != nil {
		panic(err)
	}
	home.Start()
	defer home.Close()

	// 3. The hub HTTP API (the same one safehome-hub serves).
	api := httptest.NewServer(home.HTTPHandler())
	defer api.Close()
	fmt.Printf("hub HTTP API at %s/api/status\n\n", api.URL)

	// 4. Submit an "evening" routine across all plugs, and a conflicting one.
	evening := safehome.NewRoutine("evening-lights")
	for _, id := range ids {
		evening.Commands = append(evening.Commands, safehome.Command{Device: id, Target: safehome.On})
	}
	if _, err := home.Submit(evening); err != nil {
		panic(err)
	}
	if _, err := home.Submit(safehome.NewRoutine("night-mode",
		safehome.Command{Device: ids[0], Target: safehome.Off},
		safehome.Command{Device: ids[1], Target: safehome.Off},
	)); err != nil {
		panic(err)
	}

	// 5. Kill one plug while routines are in flight: the failure detector
	// notices within its probe period and the controller reacts.
	time.Sleep(20 * time.Millisecond)
	if err := emulator.Fleet().Fail(ids[4]); err != nil {
		panic(err)
	}
	fmt.Printf("injected failure of %s\n", ids[4])

	if err := home.WaitIdle(10 * time.Second); err != nil {
		panic(err)
	}

	fmt.Println("\nroutine outcomes:")
	for _, res := range home.Results() {
		fmt.Printf("  %-16s %-10s executed=%d rolled-back=%d %s\n",
			res.Routine.Name, res.Status, res.Executed, res.RolledBack, res.AbortReason)
	}

	fmt.Println("\ndevice view (committed state + liveness):")
	for _, d := range home.Devices() {
		fmt.Printf("  %-8s state=%-4s up=%v\n", d.Info.ID, d.State, d.Up)
	}

	// 6. The home runtime's mailbox admission stats: every submission, trigger
	// and failure notification above flowed through one bounded typed-op ring
	// (a full ring answers 429 instead of queuing without bound).
	st := home.Status()
	fmt.Printf("\nmailbox: accepted=%d rejected=%d depth=%d/%d\n",
		st.Mailbox.Accepted, st.Mailbox.Rejected, st.Mailbox.Depth, st.Mailbox.Capacity)

	resp, err := http.Get(api.URL + "/api/status")
	if err == nil {
		fmt.Printf("\nGET /api/status -> %s\n", resp.Status)
		resp.Body.Close()
	}
}

// Morning rush: the paper's Morning scenario (§7.2) — four family members
// concurrently firing 29 routines over 25 minutes against 31 devices — run
// under all four visibility models. The output mirrors Fig 12a's morning row:
// Eventual Visibility keeps latency close to today's Weak Visibility while
// guaranteeing a serializable end state, and Global Strict Visibility is an
// order of magnitude slower.
package main

import (
	"fmt"
	"time"

	"safehome/internal/harness"
	"safehome/internal/workload"
)

func main() {
	const trials = 10
	fmt.Printf("Morning scenario (%d randomized trials per model)\n", trials)
	fmt.Printf("%-8s %12s %12s %10s %12s %12s\n",
		"model", "p50 latency", "p95 latency", "aborted", "temp incong", "parallelism")

	gen := func(seed int64) workload.Spec { return workload.Morning(seed) }
	for _, agg := range harness.Compare(gen, harness.StandardConfigs(), trials, 1) {
		fmt.Printf("%-8s %12s %12s %10d %11.1f%% %12.2f\n",
			agg.Label(),
			time.Duration(agg.LatencyMS.P50*float64(time.Millisecond)).Round(time.Second),
			time.Duration(agg.LatencyMS.P95*float64(time.Millisecond)).Round(time.Second),
			agg.Aborted,
			100*agg.TempIncongruence.Mean,
			agg.Parallelism.Mean,
		)
	}
	fmt.Println()
	fmt.Println("Reading the table: EV's median latency tracks WV (the status quo) while GSV")
	fmt.Println("serializes the whole household; only WV can end the morning in a state no")
	fmt.Println("serial order of the routines could produce.")
}

// Failures: the paper's motivating routine Rcooling = {window:CLOSE; ac:ON}
// runs while the window device fails at different instants. The example shows
// how each visibility model reasons about the failure — abort with rollback,
// or serialize the failure event after the routine and commit — and how
// must / best-effort tags change the outcome.
//
// Scenario D extends the failure story from devices to the hub itself: a
// durable home (write-ahead journal in a data directory) is killed
// mid-routine and reopened from the same directory, showing which outcomes
// recover exactly (everything acknowledged) and which come back Aborted
// (whatever was still in flight at the crash).
package main

import (
	"fmt"
	"os"
	"time"

	"safehome"
)

func home(model safehome.Model) *safehome.SimulatedHome {
	h, err := safehome.NewSimulatedHome(safehome.Config{Model: model},
		safehome.DeviceInfo{ID: "window", Kind: "window", Initial: safehome.Open},
		safehome.DeviceInfo{ID: "ac", Kind: "ac", Initial: safehome.Off},
		safehome.DeviceInfo{ID: "hall-light", Kind: "light", Initial: safehome.Off},
		safehome.DeviceInfo{ID: "door", Kind: "door-lock", Initial: safehome.Unlocked},
	)
	if err != nil {
		panic(err)
	}
	return h
}

func cooling() *safehome.Routine {
	return safehome.NewRoutine("cooling",
		safehome.Command{Device: "window", Target: safehome.Closed},
		safehome.Command{Device: "ac", Target: safehome.On},
	)
}

func report(h *safehome.SimulatedHome) {
	for _, res := range h.Results() {
		fmt.Printf("    %-12s %-9s executed=%d rolled-back=%d",
			res.Routine.Name, res.Status, res.Executed, res.RolledBack)
		if res.AbortReason != "" {
			fmt.Printf("  (%s)", res.AbortReason)
		}
		fmt.Println()
	}
	fmt.Printf("    end state: window=%s ac=%s\n", h.DeviceState("window"), h.DeviceState("ac"))
}

func main() {
	fmt.Println("Scenario A: the window fails AFTER its command completed (150ms into the run)")
	fmt.Println("  GSV aborts (failure during execution); EV serializes the failure after the")
	fmt.Println("  routine and commits — the home still ends in the desired state.")
	for _, model := range []safehome.Model{safehome.GSV, safehome.PSV, safehome.EV} {
		h := home(model)
		if _, err := h.Submit(cooling()); err != nil {
			panic(err)
		}
		h.FailDeviceAfter(150*time.Millisecond, "window")
		h.Run()
		fmt.Printf("  %s:\n", model)
		report(h)
	}

	fmt.Println()
	fmt.Println("Scenario B: the AC is dead from the start — the must command fails, the routine")
	fmt.Println("  aborts everywhere, and the already-closed window is rolled back open.")
	for _, model := range []safehome.Model{safehome.GSV, safehome.EV} {
		h := home(model)
		h.FailDeviceAfter(0, "ac")
		if err := h.SubmitAfter(10*time.Millisecond, cooling()); err != nil {
			panic(err)
		}
		h.Run()
		fmt.Printf("  %s:\n", model)
		report(h)
	}

	fmt.Println()
	fmt.Println("Scenario C: leave-home with a best-effort light and a must door lock; the light")
	fmt.Println("  is dead but the door still locks and the routine completes.")
	h := home(safehome.EV)
	h.FailDeviceAfter(0, "hall-light")
	leave := safehome.NewRoutine("leave-home",
		safehome.Command{Device: "hall-light", Target: safehome.Off, BestEffort: true},
		safehome.Command{Device: "door", Target: safehome.Locked},
	)
	if err := h.SubmitAfter(10*time.Millisecond, leave); err != nil {
		panic(err)
	}
	h.Run()
	res := h.Results()[0]
	fmt.Printf("  EV: %s (best-effort failures: %d), door=%s\n",
		res.Status, res.BestEffortFailures, h.DeviceState("door"))

	fmt.Println()
	hubCrash()
}

// hubCrash is Scenario D: the hub process itself is the failing component.
// A durable live home (Config.DataDir) commits one routine (acknowledged,
// journaled, fsynced), accepts a second one that never gets to finish, and is
// then killed via Crash — the SIGKILL-equivalent, no drain, no final
// checkpoint. Reopening the same data directory shows the paper's failure
// semantics applied to the hub: the acknowledged commit is recovered exactly,
// the in-flight routine is aborted with rollback.
func hubCrash() {
	fmt.Println("Scenario D: the HUB fails — kill mid-routine, reopen from the data dir.")
	fmt.Println("  Acknowledged work recovers exactly; in-flight work comes back aborted.")

	dir, err := os.MkdirTemp("", "safehome-failures-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	devices := []safehome.DeviceInfo{
		{ID: "window", Kind: "window", Initial: safehome.Open},
		{ID: "ac", Kind: "ac", Initial: safehome.Off},
		{ID: "sprinkler", Kind: "sprinkler", Initial: safehome.Off},
	}
	cfg := safehome.Config{Model: safehome.EV, DataDir: dir}

	h, err := safehome.NewLiveHome(cfg, safehome.NewFleet(devices...), devices...)
	if err != nil {
		panic(err)
	}
	// Routine 1: committed and acknowledged before the crash.
	if _, err := h.Submit(safehome.NewRoutine("cooling",
		safehome.Command{Device: "window", Target: safehome.Closed},
		safehome.Command{Device: "ac", Target: safehome.On},
	)); err != nil {
		panic(err)
	}
	if err := h.WaitIdle(5 * time.Second); err != nil {
		panic(err)
	}
	// Routine 2: accepted (journaled with its ID) but still in flight when
	// the hub dies — a 30-minute sprinkler run that never gets to finish.
	if _, err := h.Submit(safehome.NewRoutine("water-lawn",
		safehome.Command{Device: "sprinkler", Target: safehome.On, Duration: 30 * time.Minute},
	)); err != nil {
		panic(err)
	}
	_, cursor := h.EventsSince(0)
	fmt.Printf("  before crash: %d routines accepted, event cursor at %d\n", len(h.Results()), cursor)

	h.Crash()
	fmt.Println("  ... hub killed mid-routine ...")

	rec, err := safehome.NewLiveHome(cfg, safehome.NewFleet(devices...), devices...)
	if err != nil {
		panic(err)
	}
	defer rec.Close()
	for _, res := range rec.Results() {
		fmt.Printf("    %-12s %-9s", res.Routine.Name, res.Status)
		if res.AbortReason != "" {
			fmt.Printf("  (%s)", res.AbortReason)
		}
		fmt.Println()
	}
	states := map[safehome.DeviceID]safehome.DeviceState{}
	for _, d := range rec.Devices() {
		states[d.Info.ID] = d.State
	}
	fmt.Printf("    recovered state: window=%s ac=%s sprinkler=%s (sprinkler rolled back)\n",
		states["window"], states["ac"], states["sprinkler"])
	tail, next := rec.EventsSince(cursor)
	fmt.Printf("    old event cursor %d still valid: %d new events (abort record), next=%d\n",
		cursor, len(tail), next)
}

// Failures: the paper's motivating routine Rcooling = {window:CLOSE; ac:ON}
// runs while the window device fails at different instants. The example shows
// how each visibility model reasons about the failure — abort with rollback,
// or serialize the failure event after the routine and commit — and how
// must / best-effort tags change the outcome.
package main

import (
	"fmt"
	"time"

	"safehome"
)

func home(model safehome.Model) *safehome.SimulatedHome {
	h, err := safehome.NewSimulatedHome(safehome.Config{Model: model},
		safehome.DeviceInfo{ID: "window", Kind: "window", Initial: safehome.Open},
		safehome.DeviceInfo{ID: "ac", Kind: "ac", Initial: safehome.Off},
		safehome.DeviceInfo{ID: "hall-light", Kind: "light", Initial: safehome.Off},
		safehome.DeviceInfo{ID: "door", Kind: "door-lock", Initial: safehome.Unlocked},
	)
	if err != nil {
		panic(err)
	}
	return h
}

func cooling() *safehome.Routine {
	return safehome.NewRoutine("cooling",
		safehome.Command{Device: "window", Target: safehome.Closed},
		safehome.Command{Device: "ac", Target: safehome.On},
	)
}

func report(h *safehome.SimulatedHome) {
	for _, res := range h.Results() {
		fmt.Printf("    %-12s %-9s executed=%d rolled-back=%d",
			res.Routine.Name, res.Status, res.Executed, res.RolledBack)
		if res.AbortReason != "" {
			fmt.Printf("  (%s)", res.AbortReason)
		}
		fmt.Println()
	}
	fmt.Printf("    end state: window=%s ac=%s\n", h.DeviceState("window"), h.DeviceState("ac"))
}

func main() {
	fmt.Println("Scenario A: the window fails AFTER its command completed (150ms into the run)")
	fmt.Println("  GSV aborts (failure during execution); EV serializes the failure after the")
	fmt.Println("  routine and commits — the home still ends in the desired state.")
	for _, model := range []safehome.Model{safehome.GSV, safehome.PSV, safehome.EV} {
		h := home(model)
		if _, err := h.Submit(cooling()); err != nil {
			panic(err)
		}
		h.FailDeviceAfter(150*time.Millisecond, "window")
		h.Run()
		fmt.Printf("  %s:\n", model)
		report(h)
	}

	fmt.Println()
	fmt.Println("Scenario B: the AC is dead from the start — the must command fails, the routine")
	fmt.Println("  aborts everywhere, and the already-closed window is rolled back open.")
	for _, model := range []safehome.Model{safehome.GSV, safehome.EV} {
		h := home(model)
		h.FailDeviceAfter(0, "ac")
		if err := h.SubmitAfter(10*time.Millisecond, cooling()); err != nil {
			panic(err)
		}
		h.Run()
		fmt.Printf("  %s:\n", model)
		report(h)
	}

	fmt.Println()
	fmt.Println("Scenario C: leave-home with a best-effort light and a must door lock; the light")
	fmt.Println("  is dead but the door still locks and the routine completes.")
	h := home(safehome.EV)
	h.FailDeviceAfter(0, "hall-light")
	leave := safehome.NewRoutine("leave-home",
		safehome.Command{Device: "hall-light", Target: safehome.Off, BestEffort: true},
		safehome.Command{Device: "door", Target: safehome.Locked},
	)
	if err := h.SubmitAfter(10*time.Millisecond, leave); err != nil {
		panic(err)
	}
	h.Run()
	res := h.Results()[0]
	fmt.Printf("  EV: %s (best-effort failures: %d), door=%s\n",
		res.Status, res.BestEffortFailures, h.DeviceState("door"))
}

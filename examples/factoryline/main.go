// Factory line: the paper's Factory scenario (§7.2) — an assembly line of 50
// workers whose routines touch local, neighbour-shared, and global devices.
// The example contrasts Strong-GSV (the "stop the whole line on any failure"
// policy of Table 2's manufacturing pipeline) with Eventual Visibility, both
// with a mid-run failure of a shared conveyor belt.
package main

import (
	"fmt"
	"time"

	"safehome/internal/harness"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

func main() {
	params := workload.DefaultFactoryParams()
	params.Stages = 30
	params.RoutinesPerStage = 2

	gen := func(seed int64) workload.Spec {
		p := params
		p.Seed = seed
		spec := workload.Factory(p)
		// A shared belt in the middle of the line dies one minute in.
		spec.Failures = append(spec.Failures, workload.FailureEvent{
			At:     time.Minute,
			Device: "belt-15",
		})
		return spec
	}

	configs := []harness.Config{
		{Label: "S-GSV", Options: visibility.DefaultOptions(visibility.SGSV)},
		{Label: "PSV", Options: visibility.DefaultOptions(visibility.PSV)},
		{Label: "EV", Options: visibility.DefaultOptions(visibility.EV)},
	}

	const trials = 5
	fmt.Printf("Factory scenario: %d stages, %d routines, belt-15 fails at t=1m (%d trials)\n\n",
		params.Stages, params.Stages*params.RoutinesPerStage, trials)
	fmt.Printf("%-8s %12s %10s %10s %14s %12s\n",
		"model", "p50 latency", "committed", "aborted", "rollback cost", "parallelism")
	for _, agg := range harness.Compare(gen, configs, trials, 1) {
		fmt.Printf("%-8s %12s %10d %10d %13.1f%% %12.2f\n",
			agg.Label(),
			time.Duration(agg.LatencyMS.P50*float64(time.Millisecond)).Round(time.Second),
			agg.Committed,
			agg.Aborted,
			100*agg.RollbackOverhead.Mean,
			agg.Parallelism.Mean,
		)
	}
	fmt.Println()
	fmt.Println("S-GSV reflects the pipeline policy of Table 2: any stage failure stops the")
	fmt.Println("currently-running routine, whoever owns it, and the line runs one routine at")
	fmt.Println("a time. EV keeps unaffected stages running concurrently and only aborts the")
	fmt.Println("routines whose devices actually failed.")
}

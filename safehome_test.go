package safehome

import (
	"testing"
	"time"
)

func demoDevices() []DeviceInfo {
	return []DeviceInfo{
		{ID: "window", Kind: "window", Initial: Open},
		{ID: "ac", Kind: "ac", Initial: Off},
		{ID: "coffee", Kind: "coffee-maker", Initial: Off},
		{ID: "door", Kind: "door-lock", Initial: Unlocked},
	}
}

func cooling() *Routine {
	return NewRoutine("cooling",
		Command{Device: "window", Target: Closed},
		Command{Device: "ac", Target: On})
}

func TestSimulatedHomeQuickstart(t *testing.T) {
	home, err := NewSimulatedHome(Config{Model: EV}, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	id, err := home.Submit(cooling())
	if err != nil {
		t.Fatal(err)
	}
	if err := home.SubmitAfter(50*time.Millisecond, NewRoutine("warm",
		Command{Device: "window", Target: Open},
		Command{Device: "ac", Target: Off})); err != nil {
		t.Fatal(err)
	}
	elapsed := home.Run()
	if elapsed <= 0 {
		t.Errorf("Run elapsed = %v, want > 0", elapsed)
	}
	res, ok := home.Result(id)
	if !ok || res.Status != StatusCommitted {
		t.Fatalf("cooling routine = %+v, %v", res, ok)
	}
	if got := home.DeviceState("ac"); got != Off {
		t.Errorf("ac end state = %q, want OFF (the warm routine ran last)", got)
	}
	if home.PendingCount() != 0 {
		t.Errorf("pending = %d, want 0", home.PendingCount())
	}
	if home.Model() != EV {
		t.Errorf("model = %v, want EV", home.Model())
	}
}

func TestSimulatedHomeValidation(t *testing.T) {
	if _, err := NewSimulatedHome(Config{}); err == nil {
		t.Error("a home with no devices should be rejected")
	}
	home, err := NewSimulatedHome(Config{Model: EV}, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.Submit(NewRoutine("empty")); err == nil {
		t.Error("an empty routine should be rejected")
	}
}

func TestSimulatedHomeFailureInjection(t *testing.T) {
	home, err := NewSimulatedHome(Config{Model: EV}, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	home.FailDeviceAfter(0, "ac")
	if err := home.SubmitAfter(10*time.Millisecond, cooling()); err != nil {
		t.Fatal(err)
	}
	home.RestoreDeviceAfter(time.Hour, "ac")
	home.Run()
	results := home.Results()
	if len(results) != 1 || results[0].Status != StatusAborted {
		t.Fatalf("results = %+v, want one aborted routine", results)
	}
	// Rollback restored the window.
	if got := home.DeviceState("window"); got != Open {
		t.Errorf("window = %q, want OPEN after rollback", got)
	}
}

func TestSimulatedHomeObserver(t *testing.T) {
	var events int
	home, err := NewSimulatedHome(Config{Model: GSV, Observer: func(Event) { events++ }}, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.Submit(cooling()); err != nil {
		t.Fatal(err)
	}
	home.Run()
	if events == 0 {
		t.Error("observer received no events")
	}
}

func TestLiveHomeOverInMemoryFleet(t *testing.T) {
	fleet := NewFleet(demoDevices()...)
	home, err := NewLiveHome(Config{Model: EV, DefaultShortCommand: 5 * time.Millisecond},
		fleet, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()

	if err := home.Store(cooling()); err != nil {
		t.Fatal(err)
	}
	if _, err := home.Trigger("cooling"); err != nil {
		t.Fatal(err)
	}
	if err := home.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := home.Results()
	if len(results) != 1 || results[0].Status != StatusCommitted {
		t.Fatalf("results = %+v", results)
	}
	status := home.Status()
	if status.Model != "EV" || status.Devices != 4 {
		t.Errorf("status = %+v", status)
	}
	if len(home.Events()) == 0 {
		t.Error("no events recorded")
	}
	if home.HTTPHandler() == nil {
		t.Error("HTTPHandler should not be nil")
	}
	for _, d := range home.Devices() {
		if d.Info.ID == "window" && d.State != Closed {
			t.Errorf("window committed state = %q, want CLOSED", d.State)
		}
	}
}

func TestLiveHomeOverKasaEmulator(t *testing.T) {
	devices := Plugs(3)
	em := NewKasaEmulator(devices...)
	addr, err := em.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()

	ids := make([]DeviceID, len(devices))
	for i, d := range devices {
		ids[i] = d.ID
	}
	driver := NewKasaEmulatorDriver(addr, ids)
	home, err := NewLiveHome(Config{Model: EV, DefaultShortCommand: 5 * time.Millisecond}, driver, devices...)
	if err != nil {
		t.Fatal(err)
	}
	home.Start()
	defer home.Close()

	r := NewRoutine("all-on")
	for _, id := range ids {
		r.Commands = append(r.Commands, Command{Device: id, Target: On})
	}
	if _, err := home.Submit(r); err != nil {
		t.Fatal(err)
	}
	if err := home.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, st := range em.Fleet().Snapshot() {
		if st != On {
			t.Errorf("emulated plug %s = %q, want ON", id, st)
		}
	}
}

func TestLiveHomeScheduledTrigger(t *testing.T) {
	fleet := NewFleet(demoDevices()...)
	home, err := NewLiveHome(Config{Model: EV, DefaultShortCommand: 2 * time.Millisecond},
		fleet, demoDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()

	if err := home.Store(cooling()); err != nil {
		t.Fatal(err)
	}
	if _, err := home.ScheduleAfter("cooling", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(home.Triggers()) != 1 {
		t.Fatalf("Triggers = %v, want one", home.Triggers())
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(home.Results()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduled routine never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := home.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := home.Results()[0].Status; got != StatusCommitted {
		t.Fatalf("scheduled routine status = %v", got)
	}

	// A recurring trigger can be cancelled.
	handle, err := home.ScheduleEvery("cooling", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	home.CancelTrigger(handle)
	if len(home.Triggers()) != 0 {
		t.Fatalf("Triggers after cancel = %v, want none", home.Triggers())
	}
}

func TestParsersAndBuilders(t *testing.T) {
	if m, err := ParseModel("psv"); err != nil || m != PSV {
		t.Errorf("ParseModel(psv) = %v, %v", m, err)
	}
	if k, err := ParseScheduler("fcfs"); err != nil || k != SchedulerFCFS {
		t.Errorf("ParseScheduler(fcfs) = %v, %v", k, err)
	}
	spec, err := MarshalRoutineSpec(cooling())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRoutineSpec(spec)
	if err != nil || back.Name != "cooling" || len(back.Commands) != 2 {
		t.Errorf("spec round trip = %+v, %v", back, err)
	}
	bank := NewRoutineBank()
	if err := bank.Store(cooling()); err != nil || bank.Len() != 1 {
		t.Errorf("bank store failed: %v", err)
	}
	if len(Plugs(4)) != 4 {
		t.Errorf("Plugs(4) = %d entries", len(Plugs(4)))
	}
	if reg := NewRegistry(demoDevices()...); reg.Len() != 4 {
		t.Errorf("NewRegistry = %d devices", reg.Len())
	}
}

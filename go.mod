module safehome

go 1.24

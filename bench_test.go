package safehome

// Benchmark harness: one testing.B benchmark per figure/table of the paper's
// evaluation (each iteration regenerates a scaled-down version of the
// artifact through the experiments package), plus micro-benchmarks of the
// mechanisms the paper reports costs for — most importantly the Timeline
// scheduler's insertion path (Fig 15d) and the lineage-table operations.
//
// Regenerate the full-size artifacts with:
//
//	go run ./cmd/safehome-bench -experiment all

import (
	"fmt"
	"testing"

	"safehome/internal/device"
	"safehome/internal/experiments"
	"safehome/internal/harness"
	"safehome/internal/journal"
	"safehome/internal/kasa"
	"safehome/internal/lineage"
	"safehome/internal/routine"
	"safehome/internal/runtime"
	"safehome/internal/schedbench"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// benchOpts keeps each iteration small so `go test -bench=.` stays tractable;
// the safehome-bench binary runs the full-size versions.
func benchOpts() experiments.Options { return experiments.Options{Trials: 1, Quick: true, Seed: 1} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(benchOpts())
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// --- one benchmark per paper artifact -------------------------------------------

func BenchmarkFigure1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFigure2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFigure12a(b *testing.B) { runExperiment(b, "fig12a") }
func BenchmarkFigure12b(b *testing.B) { runExperiment(b, "fig12b") }
func BenchmarkFigure13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFigure15ab(b *testing.B) {
	runExperiment(b, "fig15ab")
}
func BenchmarkFigure15c(b *testing.B) { runExperiment(b, "fig15c") }
func BenchmarkFigure15d(b *testing.B) { runExperiment(b, "fig15d") }
func BenchmarkFigure16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkTable3(b *testing.B)    { runExperiment(b, "table3") }

// --- trace scenarios under each visibility model ---------------------------------

func benchScenario(b *testing.B, gen harness.Generator, model visibility.Model) {
	b.Helper()
	b.ReportAllocs()
	opts := visibility.DefaultOptions(model)
	for i := 0; i < b.N; i++ {
		res := harness.Run(gen(int64(i)+1), opts, int64(i)+1)
		if res.Report.Routines == 0 {
			b.Fatal("scenario produced no routines")
		}
	}
}

func BenchmarkMorningScenario(b *testing.B) {
	for _, model := range []visibility.Model{visibility.WV, visibility.GSV, visibility.PSV, visibility.EV} {
		b.Run(model.String(), func(b *testing.B) {
			benchScenario(b, func(seed int64) workload.Spec { return workload.Morning(seed) }, model)
		})
	}
}

func BenchmarkPartyScenario(b *testing.B) {
	benchScenario(b, func(seed int64) workload.Spec { return workload.Party(seed) }, visibility.EV)
}

func BenchmarkFactoryScenario(b *testing.B) {
	benchScenario(b, func(seed int64) workload.Spec {
		p := workload.DefaultFactoryParams()
		p.Stages = 20
		p.Seed = seed
		return workload.Factory(p)
	}, visibility.EV)
}

// --- Fig 15d: the true scheduler-insertion micro-benchmark -----------------------

// BenchmarkTimelineInsertion measures Algorithm 1's cost of placing one new
// routine into a lineage table already occupied by 30 routines over 15
// devices (the paper's Raspberry Pi configuration, Fig 15d). The workload
// lives in internal/schedbench so `safehome-bench -out` records the exact
// same numbers into BENCH_schedhot.json.
func BenchmarkTimelineInsertion(b *testing.B) {
	for _, nCmds := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("commands=%d", nCmds), schedbench.TimelineInsertion(nCmds))
	}
}

// --- home runtime mailbox throughput ----------------------------------------------

// BenchmarkRuntimeThroughput measures one home runtime's typed-mailbox round
// trip — admission, batch dequeue, EV scheduling and execution on the virtual
// clock, reply delivery — with parallel clients on a single mailbox. batch=1
// vs batch=32 isolates what batch dequeue buys under contention. Shared with
// safehome-bench via internal/schedbench.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), schedbench.RuntimeThroughput(batch))
		// journal=on group-commits every batch drain to a write-ahead journal
		// in a temp dir (one fsync per batch) before replies are delivered —
		// the durability overhead of PR 5, amortized by batch dequeue.
		b.Run(fmt.Sprintf("batch=%d/journal=on", batch), schedbench.RuntimeThroughputJournaled(batch))
	}
	// The other durability tiers at the amortizing batch size: group runs the
	// home over a shared writer (the coalescing pipeline itself), async
	// acknowledges ahead of the disk.
	for _, mode := range []journal.Mode{journal.ModeGroup, journal.ModeAsync} {
		b.Run(fmt.Sprintf("batch=32/journal=%v", mode), schedbench.RuntimeThroughputTiered(32, mode))
	}
}

// --- off-loop read path -----------------------------------------------------------

// BenchmarkQueryThroughput measures mixed read/write operations per second
// against one home runtime: pure readers (reads=100) plus 90/10 and 50/50
// read/write mixes, under the default snapshot read path (reads never touch
// the mailbox) and under the linearizable baseline (every read posts a
// mailbox op). Shared with safehome-bench via internal/schedbench; the
// reads/s extra metric is the headline — snapshot reads clear the mailbox
// baseline by well over 5x (~30x on one core, more with parallel readers,
// since snapshot reads also stop stealing loop time from placement).
func BenchmarkQueryThroughput(b *testing.B) {
	for _, mix := range []int{100, 90, 50} {
		for _, mode := range []runtime.ReadConsistency{runtime.ReadSnapshot, runtime.ReadLinearizable} {
			b.Run(fmt.Sprintf("reads=%d/mode=%s", mix, mode), schedbench.QueryThroughput(mode, mix))
		}
	}
}

// --- multi-tenant manager throughput ----------------------------------------------

// BenchmarkManagerThroughput measures the sharded HomeManager's end-to-end
// routine throughput — submit, EV-schedule, execute on the virtual clock,
// commit — across worker-shard counts. Each parallel bench goroutine plays an
// API client submitting to homes spread over every shard; the routines/s
// metric is the headline scale-out number (expect it to grow with shards up
// to the core count). Shared with safehome-bench via internal/schedbench.
func BenchmarkManagerThroughput(b *testing.B) {
	const homes = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), schedbench.ManagerThroughput(shards, homes))
	}
	// Journaled rows expose the fsync wall and its collapse: sync pays one
	// fsync per home per drain, group coalesces each shard's homes into one
	// shared-writer fsync cycle, async decouples acknowledgement from the
	// disk entirely.
	for _, mode := range []journal.Mode{journal.ModeSync, journal.ModeGroup, journal.ModeAsync} {
		b.Run(fmt.Sprintf("shards=8/journal=%v", mode), schedbench.ManagerThroughputJournaled(8, homes, mode))
	}
}

// --- hibernation: registered-home density -----------------------------------------

// BenchmarkHomeDensity measures how many registered homes one process can
// hold: every home registers cold (frozen record, no runtime, no goroutines),
// a ~1% hot set reanimates by first touch. Reported extras are resident bytes
// per frozen home vs per live home (the density win) and first-touch wake
// latency p50/p99. One iteration builds the whole fleet — run with
// -benchtime=1x; size the fleet with SAFEHOME_DENSITY_HOMES (default 100000,
// CI smoke uses 20000).
func BenchmarkHomeDensity(b *testing.B) {
	homes := schedbench.DensityHomes()
	b.Run(fmt.Sprintf("homes=%d/hot=1%%", homes), schedbench.HomeDensity(homes, 1))
}

// --- mechanism micro-benchmarks ---------------------------------------------------

func BenchmarkLineageTableAppendAndCompact(b *testing.B) {
	b.ReportAllocs()
	devs := []device.ID{"a", "b", "c", "d", "e"}
	initial := make(map[device.ID]device.State, len(devs))
	for _, d := range devs {
		initial[d] = device.Off
	}
	for i := 0; i < b.N; i++ {
		tab := lineage.NewTable(initial)
		for r := routine.ID(1); r <= 20; r++ {
			for _, d := range devs {
				if _, err := tab.Append(d, lineage.Access{Routine: r, Status: lineage.Scheduled}); err != nil {
					b.Fatal(err)
				}
			}
		}
		for r := routine.ID(1); r <= 20; r++ {
			for _, d := range devs {
				_ = tab.SetStatus(d, r, lineage.Acquired)
				_ = tab.SetTarget(d, r, device.On)
				_ = tab.SetStatus(d, r, lineage.Released)
			}
			tab.Compact(r)
		}
	}
}

func BenchmarkEVMicroWorkload(b *testing.B) {
	p := workload.DefaultMicroParams()
	p.Routines = 40
	p.Devices = 15
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i) + 1
		res := harness.Run(workload.Micro(p), visibility.DefaultOptions(visibility.EV), p.Seed)
		if res.Report.Committed == 0 {
			b.Fatal("no routine committed")
		}
	}
}

func BenchmarkKasaCodecRoundTrip(b *testing.B) {
	payload := []byte(`{"context":{"device_id":"plug-7"},"system":{"set_relay_state":{"state":1}}}`)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if out := kasa.Decrypt(kasa.Encrypt(payload)); len(out) != len(payload) {
			b.Fatal("round trip length mismatch")
		}
	}
}

func BenchmarkCongruenceCheck(b *testing.B) {
	// End-state serializability check for a committed Morning scenario.
	spec := workload.Morning(1)
	res := harness.Run(spec, visibility.DefaultOptions(visibility.EV), 1)
	if !res.Report.FinalCongruent {
		b.Fatal("expected a congruent end state")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := harness.Run(spec, visibility.DefaultOptions(visibility.EV), int64(i))
		if !out.Report.FinalCongruent {
			b.Fatal("unexpected incongruence")
		}
	}
}

// Package safehome is the public API of the SafeHome library: a smart-home
// management layer providing atomicity and serial-equivalence (visibility)
// guarantees for concurrently executing routines, in the presence of device
// failures and restarts — a from-scratch Go implementation of "Home,
// SafeHome: Smart Home Reliability with Visibility and Atomicity"
// (EuroSys 2021).
//
// The package exposes two ways to run SafeHome:
//
//   - SimulatedHome executes routines against an in-memory device fleet on a
//     virtual clock — a 40-minute dishwasher cycle takes microseconds of real
//     time. This is the mode the paper's evaluation (and this repository's
//     benchmark harness) uses, and the easiest way to explore the visibility
//     models.
//
//   - LiveHome executes routines in real time against any device Actuator —
//     the bundled Kasa TCP driver (NewKasaDriver) for networked smart plugs,
//     the in-memory fleet (NewFleet) for demos, or your own implementation.
//
// Lower-level building blocks (the lineage table, schedulers, workload
// generators and experiment harness) live under internal/ and are exercised
// through the cmd/ binaries.
package safehome

import (
	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// Re-exported core types. These are aliases, so values returned by the
// library interoperate directly with the documented fields of each type.
type (
	// DeviceID identifies a device.
	DeviceID = device.ID
	// DeviceState is a device's externally visible state ("ON", "BREW", ...).
	DeviceState = device.State
	// DeviceInfo is a device's static metadata.
	DeviceInfo = device.Info
	// DeviceKind is a coarse device category.
	DeviceKind = device.Kind
	// Actuator is the device-facing API SafeHome drives devices through.
	Actuator = device.Actuator
	// Fleet is the in-memory simulated device fleet (with failure injection).
	Fleet = device.Fleet

	// Command is one step of a routine.
	Command = routine.Command
	// Condition optionally guards a command on another device's state.
	Condition = routine.Condition
	// Routine is a named sequence of commands.
	Routine = routine.Routine
	// RoutineID identifies a submitted routine instance.
	RoutineID = routine.ID
	// Bank stores named routine definitions.
	Bank = routine.Bank

	// Model selects a visibility model (WV, GSV, SGSV, PSV, EV).
	Model = visibility.Model
	// SchedulerKind selects the EV scheduling policy (FCFS, JiT, Timeline).
	SchedulerKind = visibility.SchedulerKind
	// Result is a routine's outcome.
	Result = visibility.Result
	// RoutineStatus is a routine's lifecycle state.
	RoutineStatus = visibility.RoutineStatus
	// Event is an observable controller event.
	Event = visibility.Event
	// Observer receives controller events.
	Observer = visibility.Observer
)

// Conventional device states.
const (
	On       = device.On
	Off      = device.Off
	Open     = device.Open
	Closed   = device.Closed
	Locked   = device.Locked
	Unlocked = device.Unlocked
)

// Visibility models (§2.1 of the paper).
const (
	// WV is Weak Visibility: today's best-effort status quo.
	WV = visibility.WV
	// GSV is Global Strict Visibility: at most one routine at a time.
	GSV = visibility.GSV
	// SGSV is Strong GSV: any device failure aborts the running routine.
	SGSV = visibility.SGSV
	// PSV is Partitioned Strict Visibility: conflicting routines serialize.
	PSV = visibility.PSV
	// EV is Eventual Visibility: the paper's main contribution.
	EV = visibility.EV
)

// Eventual-Visibility scheduling policies (§5 of the paper).
const (
	SchedulerTimeline = visibility.SchedTL
	SchedulerFCFS     = visibility.SchedFCFS
	SchedulerJiT      = visibility.SchedJiT
)

// Routine lifecycle states.
const (
	StatusWaiting   = visibility.StatusWaiting
	StatusRunning   = visibility.StatusRunning
	StatusCommitted = visibility.StatusCommitted
	StatusAborted   = visibility.StatusAborted
)

// NewRoutine builds a routine from commands.
func NewRoutine(name string, cmds ...Command) *Routine { return routine.New(name, cmds...) }

// NewRoutineBank returns an empty routine bank.
func NewRoutineBank() *Bank { return routine.NewBank() }

// ParseRoutineSpec decodes a JSON routine document (the Fig 10-style wire
// format used by the hub's HTTP API).
func ParseRoutineSpec(data []byte) (*Routine, error) { return routine.ParseSpec(data) }

// MarshalRoutineSpec encodes a routine into the JSON wire format.
func MarshalRoutineSpec(r *Routine) ([]byte, error) { return routine.MarshalSpec(r) }

// NewRegistry builds a device registry from device metadata.
func NewRegistry(devices ...DeviceInfo) *device.Registry { return device.NewRegistry(devices...) }

// NewFleet builds an in-memory simulated device fleet for the given devices.
// The fleet implements Actuator and supports Fail/Restore for fault drills.
func NewFleet(devices ...DeviceInfo) *Fleet {
	return device.NewFleet(device.NewRegistry(devices...))
}

// ParseModel parses a visibility-model name ("EV", "GSV", "s-gsv", ...).
func ParseModel(s string) (Model, error) { return visibility.ParseModel(s) }

// ParseScheduler parses a scheduler name ("TL", "FCFS", "JiT").
func ParseScheduler(s string) (SchedulerKind, error) { return visibility.ParseScheduler(s) }
